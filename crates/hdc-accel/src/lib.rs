//! # hdc-accel
//!
//! The accelerator back end of the HPVM-HDC reproduction: analytical
//! performance models for the two fixed-function HDC accelerator targets
//! (the 40 nm digital ASIC and the ReRAM processing-in-memory design) and
//! a model-backed execution path that reports modeled
//! accelerator-vs-CPU speedups while the `hdc-runtime` kernels produce the
//! actual outputs.
//!
//! The paper's central claim is that compiling the coarse-grain HDC stages
//! (`encoding_loop` / `training_loop` / `inference_loop`) onto
//! fixed-function accelerators yields large speedups over CPU execution.
//! No silicon is attached to this repository, so the back end splits the
//! claim into two parts it *can* reproduce end to end:
//!
//! * **Functional execution** stays on the interpreter: an accelerated
//!   stage computes bit-identical outputs to the sequential per-sample
//!   oracle (asserted by the equivalence suite and by the `perf_json`
//!   harness before it records anything).
//! * **Performance** comes from an analytical model
//!   ([`AcceleratorModel`]): programming cost from the persistent values
//!   hoisted by the data-movement pass, per-sample streaming cost from the
//!   stage interface, and datapath compute cost from the lowering nests of
//!   the stage body — compared against a CPU roofline over the *same*
//!   nests. `docs/accelerator-model.md` derives every equation with a
//!   worked example.
//!
//! The pieces:
//!
//! * [`AccelParams`] / [`CpuParams`] — every device number as a named,
//!   swappable field.
//! * [`AcceleratorModel`] — [`AcceleratorModel::stage_cost`] turns one
//!   accelerator-placed stage node plus a sample count into exact modeled
//!   bits / cycles and derived seconds / energy ([`StageCost`]).
//! * [`AcceleratedExecutor`] — re-targets a program onto an accelerator
//!   (with the legality demotion of `hdc-passes`), executes it through
//!   `hdc-runtime`, and folds the model's accounting with the
//!   interpreter's [`ExecStats`](hdc_runtime::ExecStats) into
//!   [`AccelExecStats`].
//!
//! # Example
//!
//! ```
//! use hdc_accel::{AcceleratedExecutor, AcceleratorModel};
//! use hdc_core::prelude::*;
//! use hdc_ir::prelude::*;
//! use hdc_runtime::Value;
//!
//! // Listing-1-shaped inference as a stage, binarized.
//! let mut b = ProgramBuilder::new("modeled_inference");
//! let q = b.input_matrix("queries", ElementKind::Bit, 100, 2048);
//! let c = b.input_matrix("classes", ElementKind::Bit, 26, 2048);
//! let preds = b.inference_loop("infer", q, c, ScorePolarity::Distance, |b, s| {
//!     b.hamming_distance(s, c)
//! });
//! b.mark_output(preds);
//! let program = b.finish();
//!
//! let ax = AcceleratedExecutor::new(
//!     &program,
//!     Target::DigitalAsic,
//!     AcceleratorModel::default(),
//! );
//! let mut rng = HdcRng::seed_from_u64(7);
//! let classes = BitMatrix::from_dense(&hdc_core::random::bipolar_hypermatrix::<f64>(26, 2048, &mut rng));
//! let queries = BitMatrix::from_rows(
//!     (0..100).map(|i| classes.row(i % 26).unwrap().clone()).collect::<Vec<_>>(),
//! ).unwrap();
//! let run = ax
//!     .run_with(|exec| {
//!         exec.bind("queries", Value::bit_matrix(queries))?;
//!         exec.bind("classes", Value::bit_matrix(classes))?;
//!         Ok(())
//!     })
//!     .unwrap();
//!
//! // Functional outputs come from the real kernels...
//! assert_eq!(run.outputs.indices(preds).unwrap()[..3], [0, 1, 2]);
//! // ...while the model accounts the accelerated stage: 26*2048-bit class
//! // memory programmed once, 7 datapath cycles per sample.
//! let stage = &run.stats.modeled.stages[0];
//! assert_eq!(stage.programming_bits, 26 * 2048);
//! assert_eq!(stage.cycles_per_sample, 7);
//! assert!(run.stats.modeled.modeled_speedup() > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod model;
pub mod params;

pub use executor::{AccelExecStats, AccelReport, AccelRun, AcceleratedExecutor};
pub use model::{logical_bits, AcceleratorModel, StageCost};
pub use params::{AccelParams, CpuParams};
