//! Hardware parameters for the modeled devices.
//!
//! Every number the cost model uses is a named field here, so swapping in a
//! different device (or recalibrating an existing one) never touches the
//! cost equations in [`crate::model`]. The defaults are *representative*
//! parameters for the paper's two fixed-function HDC accelerators — a
//! taped-out 40 nm digital ASIC and a ReRAM processing-in-memory design —
//! chosen to expose their structural trade-off: the ASIC has a fast host
//! link and a moderate-width datapath, the ReRAM part computes whole
//! reductions in-array but pays dearly to program its cell resistances.
//! `docs/accelerator-model.md` documents each parameter and the equations
//! they feed.

use hdc_ir::Target;

/// Analytical parameters for one fixed-function HDC accelerator.
///
/// # Examples
///
/// ```
/// use hdc_accel::AccelParams;
/// use hdc_ir::Target;
///
/// let asic = AccelParams::digital_asic();
/// let reram = AccelParams::reram();
/// assert_eq!(asic.target, Target::DigitalAsic);
/// // The ReRAM part programs its persistent memories much more slowly.
/// assert!(reram.program_bits_per_sec < asic.program_bits_per_sec);
/// // ...but its in-array reduction throughput is far wider.
/// assert!(reram.reduce_lane_bits > asic.reduce_lane_bits);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AccelParams {
    /// Which [`Target`] these parameters model.
    pub target: Target,
    /// Datapath clock frequency (Hz).
    pub clock_hz: f64,
    /// Reduction throughput: operand bits consumed per cycle by the
    /// compare-accumulate datapath (Hamming / dot-product trees, matmul
    /// accumulators). The digital ASIC processes one lane-width slice per
    /// cycle; the ReRAM part evaluates an entire array of rows at once.
    pub reduce_lane_bits: u64,
    /// Element-wise ("map") throughput: operand bits consumed per cycle by
    /// non-reduction ops (`sign`, element-wise add, shifts).
    pub map_lane_bits: u64,
    /// Host-link bandwidth for per-sample streaming (bits/s).
    pub stream_bits_per_sec: f64,
    /// Bandwidth for programming persistent device memories — the class
    /// memory and projection base memory the data-movement pass hoists out
    /// of the stage loop (bits/s). ReRAM cell writes make this far slower
    /// than the streaming link on that device.
    pub program_bits_per_sec: f64,
    /// Energy per datapath cycle (J).
    pub energy_per_cycle_j: f64,
    /// Energy per bit moved over the host link or programmed (J).
    pub energy_per_bit_j: f64,
    /// Persistent-memory capacity of one device (bits). A class memory
    /// larger than this tiles across `ceil(bits / array_bits)` chips, each
    /// holding a contiguous row-block — the hardware mirror of the
    /// runtime's class-memory sharding.
    pub array_bits: u64,
    /// Chip-to-chip interconnect bandwidth for multi-chip tilings (bits/s):
    /// the query broadcast to every extra chip plus the 64-bit partial
    /// arg-min/arg-max result each merges back.
    pub interconnect_bits_per_sec: f64,
    /// Energy per bit moved over the chip-to-chip interconnect (J).
    pub interconnect_energy_per_bit_j: f64,
}

impl AccelParams {
    /// Representative parameters for the taped-out 40 nm digital HDC ASIC:
    /// a 500 MHz, 8192-bit-per-cycle compare-accumulate datapath behind a
    /// 16 Gbit/s host link (programming and streaming share the link).
    pub fn digital_asic() -> Self {
        AccelParams {
            target: Target::DigitalAsic,
            clock_hz: 500.0e6,
            reduce_lane_bits: 8192,
            map_lane_bits: 8192,
            stream_bits_per_sec: 16.0e9,
            program_bits_per_sec: 16.0e9,
            energy_per_cycle_j: 40.0e-12,
            energy_per_bit_j: 5.0e-12,
            array_bits: 16 * 1024 * 1024,
            interconnect_bits_per_sec: 32.0e9,
            interconnect_energy_per_bit_j: 2.0e-12,
        }
    }

    /// Representative parameters for the ReRAM processing-in-memory
    /// accelerator: a 100 MHz array that evaluates 128 rows × 2048 columns
    /// of a reduction in one cycle (262 144 operand bits), but programs its
    /// persistent memories at only 1 Gbit/s because cell writes are slow.
    pub fn reram() -> Self {
        AccelParams {
            target: Target::ReRamAccelerator,
            clock_hz: 100.0e6,
            reduce_lane_bits: 262_144,
            map_lane_bits: 2048,
            stream_bits_per_sec: 8.0e9,
            program_bits_per_sec: 1.0e9,
            energy_per_cycle_j: 10.0e-12,
            energy_per_bit_j: 8.0e-12,
            array_bits: 64 * 1024 * 1024,
            interconnect_bits_per_sec: 16.0e9,
            interconnect_energy_per_bit_j: 4.0e-12,
        }
    }
}

/// Roofline parameters for the modeled CPU baseline the accelerator is
/// compared against.
///
/// The CPU side of a modeled speedup uses a two-term roofline over the same
/// lowering nests the accelerator model consumes:
/// `t = max(flops / flops_per_sec, bytes / bytes_per_sec)` per sample.
/// The defaults approximate the sustained throughput of the batched
/// `hdc-core` kernels on one reference container core — deliberately the
/// *optimized* CPU path, so modeled speedups are conservative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuParams {
    /// Sustained floating-point (or popcount-equivalent) throughput
    /// (ops/s).
    pub flops_per_sec: f64,
    /// Sustained operand bandwidth (bytes/s), cache-resident.
    pub bytes_per_sec: f64,
}

impl CpuParams {
    /// Calibrated parameters measured on the running host (see the
    /// `hdc-bench` calibration pass, `perf_json --calibrate`): sustained
    /// kernel throughput and streaming bandwidth of the *selected* kernel
    /// backend on *this* machine, replacing the documented defaults so
    /// modeled accelerator speedups are relative to the CPU the benchmarks
    /// actually ran on.
    ///
    /// Non-finite or non-positive measurements fall back to the matching
    /// default field — a failed calibration must never produce a degenerate
    /// roofline (zero or infinite CPU time).
    pub fn calibrated(flops_per_sec: f64, bytes_per_sec: f64) -> Self {
        let default = CpuParams::default();
        let sane = |v: f64, fallback: f64| {
            if v.is_finite() && v > 0.0 {
                v
            } else {
                fallback
            }
        };
        CpuParams {
            flops_per_sec: sane(flops_per_sec, default.flops_per_sec),
            bytes_per_sec: sane(bytes_per_sec, default.bytes_per_sec),
        }
    }
}

impl Default for CpuParams {
    fn default() -> Self {
        CpuParams {
            flops_per_sec: 2.0e9,
            bytes_per_sec: 2.0e10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_distinct() {
        for p in [AccelParams::digital_asic(), AccelParams::reram()] {
            assert!(p.clock_hz > 0.0);
            assert!(p.reduce_lane_bits > 0 && p.map_lane_bits > 0);
            assert!(p.stream_bits_per_sec > 0.0 && p.program_bits_per_sec > 0.0);
            assert!(p.energy_per_cycle_j > 0.0 && p.energy_per_bit_j > 0.0);
            assert!(p.array_bits > 0);
            assert!(p.interconnect_bits_per_sec > 0.0);
            assert!(p.interconnect_energy_per_bit_j > 0.0);
        }
        assert_ne!(AccelParams::digital_asic(), AccelParams::reram());
        let cpu = CpuParams::default();
        assert!(cpu.flops_per_sec > 0.0 && cpu.bytes_per_sec > 0.0);
    }
}
