//! Benchmarks for accelerator-bound stage workloads: the coarse-grain
//! inference loop executed through `hdc-runtime` (dense versus binarized),
//! and the same workload through the `hdc-accel` model-backed path — the
//! latter measures the *overhead* of the accelerator back end (re-target,
//! functional execution, cost accounting) over plain batched execution;
//! the modeled device time itself is analytic and costs nothing to
//! "execute".

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hdc_accel::{AcceleratedExecutor, AcceleratorModel};
use hdc_bench::{CLASSES, DIM};
use hdc_core::prelude::*;
use hdc_ir::prelude::*;
use hdc_passes::{compile, CompileOptions};
use hdc_runtime::{Executor, Value};

const SAMPLES: usize = 16;

fn inference_program(binarize: bool) -> (hdc_ir::Program, ValueId) {
    let mut b = ProgramBuilder::new("stage-inference");
    let queries = b.input_matrix("queries", ElementKind::F32, SAMPLES, DIM);
    let classes = b.input_matrix("classes", ElementKind::F32, CLASSES, DIM);
    let classes_b = b.sign(classes);
    b.seal_node("prep");
    let preds = b.inference_loop(
        "infer",
        queries,
        classes_b,
        ScorePolarity::Distance,
        |b, q| {
            let qb = b.sign(q);
            b.hamming_distance(qb, classes_b)
        },
    );
    b.mark_output(preds);
    let mut p = b.finish();
    let options = if binarize {
        CompileOptions::default()
    } else {
        CompileOptions::baseline()
    };
    compile(&mut p, &options).unwrap();
    (p, preds)
}

fn run_inference(p: &hdc_ir::Program, preds: ValueId) -> usize {
    let mut rng = HdcRng::seed_from_u64(1);
    let queries: HyperMatrix<f64> = hdc_core::random::random_hypermatrix(SAMPLES, DIM, &mut rng);
    let classes: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(CLASSES, DIM, &mut rng);
    let mut exec = Executor::new(p).unwrap();
    exec.bind("queries", Value::matrix(queries)).unwrap();
    exec.bind("classes", Value::matrix(classes)).unwrap();
    let out = exec.run().unwrap();
    out.indices(preds).unwrap().len()
}

fn bench_stage_inference_dense(c: &mut Criterion) {
    let (p, preds) = inference_program(false);
    c.bench_function("accelerators/stage-inference16/dense", |bench| {
        bench.iter(|| run_inference(black_box(&p), preds))
    });
}

fn bench_stage_inference_binarized(c: &mut Criterion) {
    let (p, preds) = inference_program(true);
    c.bench_function("accelerators/stage-inference16/binarized", |bench| {
        bench.iter(|| run_inference(black_box(&p), preds))
    });
}

fn run_modeled(ax: &AcceleratedExecutor, preds: ValueId) -> f64 {
    let mut rng = HdcRng::seed_from_u64(1);
    let queries: HyperMatrix<f64> = hdc_core::random::random_hypermatrix(SAMPLES, DIM, &mut rng);
    let classes: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(CLASSES, DIM, &mut rng);
    let run = ax
        .run_with(|exec| {
            exec.bind("queries", Value::matrix(queries))?;
            exec.bind("classes", Value::matrix(classes))?;
            Ok(())
        })
        .unwrap();
    let _ = run.outputs.indices(preds).unwrap().len();
    run.stats.modeled.modeled_speedup()
}

fn bench_modeled_asic_inference(c: &mut Criterion) {
    let (p, preds) = inference_program(true);
    let ax = AcceleratedExecutor::new(&p, Target::DigitalAsic, AcceleratorModel::default());
    c.bench_function("accelerators/stage-inference16/modeled-asic", |bench| {
        bench.iter(|| run_modeled(black_box(&ax), preds))
    });
}

criterion_group!(
    benches,
    bench_stage_inference_dense,
    bench_stage_inference_binarized,
    bench_modeled_asic_inference
);
criterion_main!(benches);
