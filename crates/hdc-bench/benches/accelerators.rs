fn main() {}
