//! Benchmarks for the similarity metrics: Hamming distance and cosine
//! similarity, dense versus bit-packed, vector×vector and vector×matrix
//! (the inner loop of HDC inference).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hdc_bench::{bipolar_matrix, bipolar_vector, bit_matrix, bit_vector, CLASSES, DIM};
use hdc_core::prelude::*;

fn bench_hamming(c: &mut Criterion) {
    let a = bipolar_vector(1, DIM);
    let b = bipolar_vector(2, DIM);
    c.bench_function("similarity/hamming/dense-2048", |bench| {
        bench.iter(|| hamming_distance(black_box(&a), black_box(&b), Perforation::NONE).unwrap())
    });
    let pa = bit_vector(1, DIM);
    let pb = bit_vector(2, DIM);
    c.bench_function("similarity/hamming/bit-2048", |bench| {
        bench.iter(|| {
            black_box(&pa)
                .hamming_distance(black_box(&pb), Perforation::NONE)
                .unwrap()
        })
    });
}

fn bench_hamming_inference(c: &mut Criterion) {
    // A 26-class inference scoring step: query vs every class row.
    let q = bipolar_vector(3, DIM);
    let m = bipolar_matrix(4, CLASSES, DIM);
    c.bench_function("similarity/hamming-26class/dense-2048", |bench| {
        bench.iter(|| {
            hamming_distance_matrix(black_box(&q), black_box(&m), Perforation::NONE).unwrap()
        })
    });
    let pq = bit_vector(3, DIM);
    let pm = bit_matrix(4, CLASSES, DIM);
    c.bench_function("similarity/hamming-26class/bit-2048", |bench| {
        bench.iter(|| {
            black_box(&pm)
                .hamming_distances(black_box(&pq), Perforation::NONE)
                .unwrap()
        })
    });
}

fn bench_cosine(c: &mut Criterion) {
    let a = bipolar_vector(5, DIM);
    let b = bipolar_vector(6, DIM);
    c.bench_function("similarity/cosine/dense-2048", |bench| {
        bench.iter(|| cosine_similarity(black_box(&a), black_box(&b), Perforation::NONE).unwrap())
    });
    let q = bipolar_vector(7, DIM);
    let m = bipolar_matrix(8, CLASSES, DIM);
    c.bench_function("similarity/cosine-26class/dense-2048", |bench| {
        bench.iter(|| {
            cosine_similarity_matrix(black_box(&q), black_box(&m), Perforation::NONE).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_hamming,
    bench_hamming_inference,
    bench_cosine
);
criterion_main!(benches);
