//! Benchmarks for reduction perforation: how Hamming distance and matmul
//! scale with the perforation stride (paper §4.2, Figure 7 configurations).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hdc_bench::{bipolar_matrix, bipolar_vector, CLASSES, DIM, FEATURES};
use hdc_core::prelude::*;

fn bench_perforated_hamming(c: &mut Criterion) {
    let q = bipolar_vector(1, DIM);
    let m = bipolar_matrix(2, CLASSES, DIM);
    for stride in [1usize, 2, 4, 8] {
        let perf = if stride == 1 {
            Perforation::NONE
        } else {
            Perforation::strided(0, DIM, stride)
        };
        c.bench_function(
            &format!("perforation/hamming-26class/stride{stride}"),
            |bench| {
                bench.iter(|| hamming_distance_matrix(black_box(&q), black_box(&m), perf).unwrap())
            },
        );
    }
}

fn bench_perforated_matvec(c: &mut Criterion) {
    let mut rng = HdcRng::seed_from_u64(3);
    let proj = hdc_core::random::bipolar_hypermatrix::<f32>(DIM, FEATURES, &mut rng);
    let x = hdc_core::random::random_hypervector::<f32>(FEATURES, &mut rng);
    for stride in [1usize, 2, 4] {
        let perf = if stride == 1 {
            Perforation::NONE
        } else {
            Perforation::strided(0, FEATURES, stride)
        };
        c.bench_function(
            &format!("perforation/matvec-617to2048/stride{stride}"),
            |bench| {
                bench.iter(|| {
                    hdc_core::matmul::matvec(black_box(&proj), black_box(&x), perf).unwrap()
                })
            },
        );
    }
}

fn bench_segmented_hamming(c: &mut Criterion) {
    // Configuration VIII: first-half segment.
    let q = bipolar_vector(4, DIM);
    let m = bipolar_matrix(5, CLASSES, DIM);
    let perf = Perforation::segment(0, DIM / 2);
    c.bench_function("perforation/hamming-26class/first-half", |bench| {
        bench.iter(|| hamming_distance_matrix(black_box(&q), black_box(&m), perf).unwrap())
    });
}

criterion_group!(
    benches,
    bench_perforated_hamming,
    bench_perforated_matvec,
    bench_segmented_hamming
);
criterion_main!(benches);
