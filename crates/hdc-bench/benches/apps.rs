//! End-to-end application benchmark: the paper's Listing 1
//! (HD-Classification inference for one sample) through the full spine —
//! builder DSL → pass pipeline → runtime execution — plus the compile step
//! on its own.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hdc_bench::{CLASSES, DIM, FEATURES};
use hdc_core::prelude::*;
use hdc_ir::prelude::*;
use hdc_passes::{compile, CompileOptions};
use hdc_runtime::{Executor, Value};

fn listing1() -> (hdc_ir::Program, ValueId) {
    let mut b = ProgramBuilder::new("listing1");
    let features = b.input_vector("features", ElementKind::F32, FEATURES);
    let rp = b.input_matrix("rp", ElementKind::F32, DIM, FEATURES);
    let classes = b.input_matrix("classes", ElementKind::F32, CLASSES, DIM);
    let encoded = b.matmul(features, rp);
    let encoded_b = b.sign(encoded);
    let classes_b = b.sign(classes);
    let dists = b.hamming_distance(encoded_b, classes_b);
    let label = b.arg_min(dists);
    b.mark_output(label);
    (b.finish(), label)
}

fn bench_compile(c: &mut Criterion) {
    c.bench_function("apps/listing1/compile-binarized", |bench| {
        bench.iter(|| {
            let (mut p, _) = listing1();
            compile(&mut p, &CompileOptions::default()).unwrap();
            p
        })
    });
}

fn bench_execute(c: &mut Criterion) {
    let mut rng = HdcRng::seed_from_u64(2);
    let proj = RandomProjection::<f64>::bipolar(DIM, FEATURES, &mut rng);
    let x: HyperVector<f64> = hdc_core::random::gaussian_hypervector(FEATURES, &mut rng);
    let classes: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(CLASSES, DIM, &mut rng);

    let mut run_with = |name: &str, options: &CompileOptions| {
        let (mut p, label) = listing1();
        compile(&mut p, options).unwrap();
        c.bench_function(name, |bench| {
            bench.iter(|| {
                let mut exec = Executor::new(black_box(&p)).unwrap();
                exec.bind("features", Value::vector(x.clone())).unwrap();
                exec.bind("rp", Value::matrix(proj.matrix().clone()))
                    .unwrap();
                exec.bind("classes", Value::matrix(classes.clone()))
                    .unwrap();
                exec.run().unwrap().scalar(label).unwrap()
            })
        });
    };
    run_with("apps/listing1/execute-dense", &CompileOptions::baseline());
    run_with(
        "apps/listing1/execute-binarized",
        &CompileOptions::default(),
    );
}

criterion_group!(benches, bench_compile, bench_execute);
criterion_main!(benches);
