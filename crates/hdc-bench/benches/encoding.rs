//! Benchmarks for the encoding schemes: random-projection (single and
//! batched) and the level-ID encoder.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hdc_bench::{DIM, FEATURES};
use hdc_core::prelude::*;

fn bench_random_projection(c: &mut Criterion) {
    let mut rng = HdcRng::seed_from_u64(1);
    let rp = RandomProjection::<f32>::bipolar(DIM, FEATURES, &mut rng);
    let features = hdc_core::random::random_hypervector::<f32>(FEATURES, &mut rng);
    c.bench_function("encoding/random-projection/single-617to2048", |bench| {
        bench.iter(|| black_box(&rp).encode(black_box(&features)))
    });

    let batch = hdc_core::random::random_hypermatrix::<f32>(16, FEATURES, &mut rng);
    c.bench_function("encoding/random-projection/batch16-617to2048", |bench| {
        bench.iter(|| {
            black_box(&rp)
                .encode_batch(black_box(&batch), Perforation::NONE)
                .unwrap()
        })
    });
}

fn bench_cyclic_projection(c: &mut Criterion) {
    let mut rng = HdcRng::seed_from_u64(2);
    let rp = RandomProjection::<f32>::cyclic(DIM, FEATURES, &mut rng);
    let features = hdc_core::random::random_hypervector::<f32>(FEATURES, &mut rng);
    c.bench_function("encoding/cyclic-projection/single-617to2048", |bench| {
        bench.iter(|| black_box(&rp).encode(black_box(&features)))
    });
}

fn bench_level_id(c: &mut Criterion) {
    let mut rng = HdcRng::seed_from_u64(3);
    let enc = LevelIdEncoder::<f32>::new(DIM, 64, 16, 0.0, 1.0, &mut rng);
    let sparse: Vec<(usize, f64)> = (0..32).map(|i| (i, i as f64 / 32.0)).collect();
    c.bench_function("encoding/level-id/sparse32-2048", |bench| {
        bench.iter(|| black_box(&enc).encode_sparse(black_box(&sparse)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_random_projection,
    bench_cyclic_projection,
    bench_level_id
);
criterion_main!(benches);
