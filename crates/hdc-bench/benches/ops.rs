//! Benchmarks for the core HDC operations: bind (element-wise multiply),
//! bundle (element-wise add), and sign, in dense and bit-packed forms.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hdc_bench::{bipolar_vector, bit_vector, dense_vector, DIM};

fn bench_bind(c: &mut Criterion) {
    let a = bipolar_vector(1, DIM);
    let b = bipolar_vector(2, DIM);
    c.bench_function("ops/bind/dense-2048", |bench| {
        bench.iter(|| black_box(&a).zip_with(black_box(&b), |x, y| x * y).unwrap())
    });
    let pa = bit_vector(1, DIM);
    let pb = bit_vector(2, DIM);
    c.bench_function("ops/bind/bit-2048", |bench| {
        bench.iter(|| black_box(&pa).bind(black_box(&pb)).unwrap())
    });
}

fn bench_bundle(c: &mut Criterion) {
    let a = dense_vector(3, DIM);
    let b = dense_vector(4, DIM);
    c.bench_function("ops/bundle/dense-2048", |bench| {
        bench.iter(|| hdc_core::ops::add(black_box(&a), black_box(&b)).unwrap())
    });
    let big_a = dense_vector(5, 10_240);
    let big_b = dense_vector(6, 10_240);
    c.bench_function("ops/bundle/dense-10240", |bench| {
        bench.iter(|| hdc_core::ops::add(black_box(&big_a), black_box(&big_b)).unwrap())
    });
}

fn bench_sign(c: &mut Criterion) {
    let a = dense_vector(7, DIM);
    c.bench_function("ops/sign/dense-2048", |bench| {
        bench.iter(|| black_box(&a).sign())
    });
    c.bench_function("ops/sign+pack/dense-2048", |bench| {
        bench.iter(|| hdc_core::BitVector::from_dense(black_box(&a)))
    });
}

criterion_group!(benches, bench_bind, bench_bundle, bench_sign);
criterion_main!(benches);
