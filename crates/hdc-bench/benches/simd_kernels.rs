//! Per-kernel SIMD benchmarks: the XOR/popcount reduction and the dense
//! `f64` dot-panel path, each under the scalar backend and under the
//! backend runtime detection picks on this host — so per-kernel speedup is
//! tracked independently of the end-to-end apps. On a host without SIMD
//! support the two legs coincide (both scalar) and the comparison is a
//! no-op rather than a failure.
//!
//! The backend is flipped with [`hdc_core::simd::set_backend`] around each
//! measurement; benches run single-threaded within one process, so the
//! process-global selection is safe to toggle here.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hdc_bench::bit_matrix;
use hdc_core::prelude::*;
use hdc_core::simd::{self, KernelBackend};

const POPCOUNT_DIM: usize = 10240;
const POPCOUNT_CLASSES: usize = 100;
const POPCOUNT_QUERIES: usize = 64;

const PANEL_DIM: usize = 2048;
const PANEL_CLASSES: usize = 26;
const PANEL_QUERIES: usize = 32;

fn backend_legs() -> Vec<(&'static str, KernelBackend)> {
    let detected = simd::detected();
    let mut legs = vec![("scalar", KernelBackend::Scalar)];
    if detected.is_simd() {
        legs.push((detected.name(), detected));
    }
    legs
}

fn bench_popcount(c: &mut Criterion) {
    let queries = bit_matrix(21, POPCOUNT_QUERIES, POPCOUNT_DIM);
    let classes = bit_matrix(22, POPCOUNT_CLASSES, POPCOUNT_DIM);
    for (name, backend) in backend_legs() {
        simd::set_backend(backend).expect("leg is supported");
        c.bench_function(&format!("simd/popcount-hamming-batch/{name}"), |bench| {
            bench.iter(|| {
                black_box(
                    hamming_distance_batch(
                        black_box(&queries),
                        black_box(&classes),
                        Perforation::NONE,
                    )
                    .unwrap(),
                )
            })
        });
    }
    simd::set_backend(simd::detected()).expect("detected backend is supported");
}

fn bench_dot_panel(c: &mut Criterion) {
    let mut rng = HdcRng::seed_from_u64(23);
    let queries: HyperMatrix<f64> =
        hdc_core::random::random_hypermatrix(PANEL_QUERIES, PANEL_DIM, &mut rng);
    let classes: HyperMatrix<f64> =
        hdc_core::random::random_hypermatrix(PANEL_CLASSES, PANEL_DIM, &mut rng);
    for (name, backend) in backend_legs() {
        simd::set_backend(backend).expect("leg is supported");
        c.bench_function(&format!("simd/dot-panel-cosine-batch/{name}"), |bench| {
            bench.iter(|| {
                black_box(
                    cosine_similarity_batch(
                        black_box(&queries),
                        black_box(&classes),
                        Perforation::NONE,
                    )
                    .unwrap(),
                )
            })
        });
    }
    simd::set_backend(simd::detected()).expect("detected backend is supported");
}

criterion_group!(benches, bench_popcount, bench_dot_panel);
criterion_main!(benches);
