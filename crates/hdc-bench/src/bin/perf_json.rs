//! `perf_json`: the machine-readable performance harness.
//!
//! Two workload families, each run through the `hdc-runtime` executor twice
//! per configuration — once on the per-sample sequential reference oracle
//! and once on the batched matrix-level kernel path — with identical
//! outputs asserted before any timing is recorded:
//!
//! * the **kernel grid** (`records`): a fixed inference grid, dims
//!   {2048, 10240} × classes {26, 100} × dense/binarized × perforation
//!   {1.0, 0.5};
//! * the **application suite** (`apps`): the three `hdc-apps` workloads
//!   (classification with retraining, clustering, top-k spectral matching)
//!   on their seeded `hdc-datasets` generators, compiled through the full
//!   pass pipeline;
//! * the **training section** (`training`): how the batched training /
//!   clustering-update patterns executed — epoch kernels launched,
//!   samples re-scored to stay bit-identical to the oracle, and the
//!   resulting end-to-end speedup per app;
//! * the **accelerator section** (`accelerator`): the unperforated kernel
//!   grid points and all three apps re-targeted onto the two modeled HDC
//!   accelerators (`hdc-accel`), with outputs asserted identical to the
//!   batched CPU run and the *modeled* accelerator-vs-CPU speedup, cycle
//!   and energy accounting recorded (deterministic — no wall clocks);
//! * the **scaling section** (`scaling`): the unperforated kernel grid
//!   re-run on the batched path at 1/2/4/8 worker threads
//!   (`rayon::set_num_threads`), each point's labels asserted identical to
//!   the sequential oracle and its class-memory shard/merge counters
//!   recorded — the measured two-axis (rows × class shards) scaling curve,
//!   stamped with the physical core count so a 1-core container's flat
//!   curve reads as what it is.
//!
//! Results land as JSON (default `BENCH_results.json`), establishing the
//! perf-trajectory snapshot every future PR is measured against. Run
//! `perf_json --help` for the flag and schema reference.
//!
//! Exit code is non-zero if any configuration's batched or accelerated
//! outputs diverge from the sequential oracle (or a flag is unrecognized),
//! so wiring the smoke grid into CI keeps the JSON emitter, the app suite,
//! the accelerator model, and the equivalence guarantee from rotting.

#![forbid(unsafe_code)]

use hdc_accel::{AcceleratedExecutor, AcceleratorModel};
use hdc_apps::{ClassificationApp, ClusteringApp, ExecMode, MatchingApp};
use hdc_bench::calibrate::CpuCalibration;
use hdc_core::element::ElementKind;
use hdc_core::prelude::*;
use hdc_datasets::drift::{
    concept_drift, incremental_classes, label_shift, windowed_accuracy, ConceptDriftParams,
    DriftScenario, IncrementalClassParams, LabelShiftParams,
};
use hdc_datasets::synthetic::{
    emg_like, hyperoms_like, isolet_like, EmgParams, HyperOmsParams, IsoletParams,
};
use hdc_ir::builder::ProgramBuilder;
use hdc_ir::program::{Program, ValueId};
use hdc_ir::stage::ScorePolarity;
use hdc_ir::Target;
use hdc_runtime::{ExecStats, Executor, Value};
use hdc_serve::{
    run_load, LoadConfig, LoadReport, ModelRegistry, OnlineTrainer, OnlineTrainerConfig,
    Prediction, ServableModel, Service, ServiceConfig, SwapPolicy, WindowConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The accelerator targets the model covers, in report order.
const ACCEL_TARGETS: [Target; 2] = [Target::DigitalAsic, Target::ReRamAccelerator];

/// Worker-thread counts the scaling section sweeps the batched path over.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One grid point: an inference workload shape.
#[derive(Debug, Clone, Copy)]
struct Config {
    dim: usize,
    classes: usize,
    queries: usize,
    binarized: bool,
    /// Reduction stride: 1 visits every element (fraction 1.0), 2 visits
    /// half (fraction 0.5).
    stride: usize,
}

impl Config {
    fn perforation_fraction(&self) -> f64 {
        1.0 / self.stride as f64
    }

    fn representation(&self) -> &'static str {
        if self.binarized {
            "binarized"
        } else {
            "dense"
        }
    }

    fn metric(&self) -> &'static str {
        if self.binarized {
            "hamming"
        } else {
            "cosine"
        }
    }
}

/// One measured grid point.
struct Record {
    cfg: Config,
    sequential_ms: f64,
    batched_ms: f64,
    outputs_match: bool,
    /// Worker threads the batched run executed with
    /// (`rayon::current_num_threads()` at measurement time).
    threads_used: usize,
    sequential_stats: ExecStats,
    batched_stats: ExecStats,
}

fn full_grid() -> Vec<Config> {
    let mut grid = Vec::new();
    for &dim in &[2048usize, 10240] {
        for &classes in &[26usize, 100] {
            for &binarized in &[false, true] {
                for &stride in &[1usize, 2] {
                    // The binarized path is cheap enough for the full
                    // 1000-query load; the dense oracle is O(dim*classes)
                    // flops per sample, so trim its batch to keep the grid
                    // under a minute.
                    let queries = if binarized { 1000 } else { 250 };
                    grid.push(Config {
                        dim,
                        classes,
                        queries,
                        binarized,
                        stride,
                    });
                }
            }
        }
    }
    grid
}

fn smoke_grid() -> Vec<Config> {
    let mut grid = Vec::new();
    for &binarized in &[false, true] {
        for &stride in &[1usize, 2] {
            grid.push(Config {
                dim: 256,
                classes: 8,
                queries: 16,
                binarized,
                stride,
            });
        }
    }
    grid
}

/// Build the inference program for one grid point: classify every query row
/// against the class matrix with the representation's natural metric
/// (XOR/popcount Hamming when binarized, cosine when dense).
fn build_program(cfg: &Config) -> (Program, ValueId) {
    let elem = if cfg.binarized {
        ElementKind::Bit
    } else {
        ElementKind::F64
    };
    let mut b = ProgramBuilder::new("perf_infer");
    let q = b.input_matrix("queries", elem, cfg.queries, cfg.dim);
    let c = b.input_matrix("classes", elem, cfg.classes, cfg.dim);
    let polarity = if cfg.binarized {
        ScorePolarity::Distance
    } else {
        ScorePolarity::Similarity
    };
    let dim = cfg.dim;
    let stride = cfg.stride;
    let binarized = cfg.binarized;
    let preds = b.inference_loop("infer", q, c, polarity, |b, s| {
        let d = if binarized {
            b.hamming_distance(s, c)
        } else {
            b.cossim(s, c)
        };
        if stride > 1 {
            b.red_perf(d, 0, dim, stride);
        }
        d
    });
    b.mark_output(preds);
    (b.finish(), preds)
}

/// Deterministic workload data: bipolar class prototypes and queries that
/// are noisy prototype copies, so the classification is non-trivial.
fn build_data(cfg: &Config) -> (Value, Value) {
    let mut rng = HdcRng::seed_from_u64(0xBE2C + cfg.dim as u64 + cfg.classes as u64);
    let classes: HyperMatrix<f64> =
        hdc_core::random::bipolar_hypermatrix(cfg.classes, cfg.dim, &mut rng);
    let query_rows: Vec<HyperVector<f64>> = (0..cfg.queries)
        .map(|i| {
            let mut v = classes
                .row_vector(i % cfg.classes)
                .expect("class row in range");
            // Flip ~10% of the elements.
            for k in 0..cfg.dim / 10 {
                let idx = (k * 7 + i * 13) % cfg.dim;
                let flipped = -v.get(idx).expect("index in range");
                v.set(idx, flipped).expect("index in range");
            }
            v
        })
        .collect();
    let queries = HyperMatrix::from_rows(query_rows).expect("equal row dims");
    if cfg.binarized {
        (
            Value::bit_matrix(BitMatrix::from_dense(&queries)),
            Value::bit_matrix(BitMatrix::from_dense(&classes)),
        )
    } else {
        (Value::matrix(queries), Value::matrix(classes))
    }
}

/// Run one mode `reps` times; report the best wall-clock (milliseconds),
/// the predicted labels, and the executor stats of the final rep.
fn run_mode(
    program: &Program,
    preds: ValueId,
    queries: &Value,
    classes: &Value,
    batched: bool,
    reps: usize,
) -> (f64, Vec<usize>, ExecStats) {
    let mut best_ms = f64::INFINITY;
    let mut labels = Vec::new();
    let mut stats = ExecStats::default();
    for _ in 0..reps.max(1) {
        let mut exec = Executor::new(program).expect("program verifies");
        exec.set_batched_stages(batched);
        exec.set_parallel_loops(batched);
        exec.bind("queries", queries.clone())
            .expect("shape checked");
        exec.bind("classes", classes.clone())
            .expect("shape checked");
        let start = Instant::now();
        let out = exec.run().expect("workload executes");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(ms);
        labels = out.indices(preds).expect("labels output").to_vec();
        stats = exec.stats();
    }
    (best_ms, labels, stats)
}

fn measure(cfg: Config, reps: usize) -> Record {
    let (program, preds) = build_program(&cfg);
    let (queries, classes) = build_data(&cfg);
    let (sequential_ms, seq_labels, sequential_stats) =
        run_mode(&program, preds, &queries, &classes, false, reps);
    let (batched_ms, bat_labels, batched_stats) =
        run_mode(&program, preds, &queries, &classes, true, reps);
    Record {
        cfg,
        sequential_ms,
        batched_ms,
        outputs_match: seq_labels == bat_labels,
        threads_used: rayon::current_num_threads(),
        sequential_stats,
        batched_stats,
    }
}

// ---------------------------------------------------------------------------
// scaling section: the batched kernel grid across worker-thread counts
// ---------------------------------------------------------------------------

/// One thread count of one scaling record.
struct ScalingPoint {
    threads_requested: usize,
    /// What `rayon::current_num_threads()` resolved to under the override —
    /// equal to the request (the pool oversubscribes a smaller host; the
    /// top-level `cores_physical` field says whether it did).
    threads_used: usize,
    batched_ms: f64,
    /// This point's time relative to the same configuration at 1 thread.
    speedup_vs_1: f64,
    /// Batched labels identical to the sequential oracle at this count.
    outputs_match: bool,
    /// Class-memory shards the executor chose across the run (second
    /// parallel axis; 0 when every kernel ran unsharded).
    class_shards: usize,
    /// Pairwise reduction-tree merges performed to fold shard partials.
    shard_merge_ops: usize,
}

/// One unperforated grid point swept over [`THREAD_SWEEP`].
struct ScalingRecord {
    cfg: Config,
    points: Vec<ScalingPoint>,
}

/// Sweep the batched path over the thread counts, asserting every point
/// against the sequential oracle. The thread override is cleared before
/// returning.
fn measure_scaling(grid: &[Config], reps: usize) -> Vec<ScalingRecord> {
    let mut out = Vec::new();
    for &cfg in grid.iter().filter(|c| c.stride == 1) {
        let (program, preds) = build_program(&cfg);
        let (queries, classes) = build_data(&cfg);
        let (_, reference, _) = run_mode(&program, preds, &queries, &classes, false, 1);
        let mut points: Vec<ScalingPoint> = Vec::with_capacity(THREAD_SWEEP.len());
        for &threads in &THREAD_SWEEP {
            rayon::set_num_threads(threads);
            let (ms, labels, stats) = run_mode(&program, preds, &queries, &classes, true, reps);
            let base_ms = points.first().map_or(ms, |p| p.batched_ms);
            points.push(ScalingPoint {
                threads_requested: threads,
                threads_used: rayon::current_num_threads(),
                batched_ms: ms,
                speedup_vs_1: base_ms / ms,
                outputs_match: labels == reference,
                class_shards: stats.class_shards,
                shard_merge_ops: stats.shard_merge_ops,
            });
        }
        rayon::set_num_threads(0);
        out.push(ScalingRecord { cfg, points });
    }
    out
}

// ---------------------------------------------------------------------------
// application suite
// ---------------------------------------------------------------------------

/// One measured application workload.
struct AppRecord {
    app: &'static str,
    dataset: &'static str,
    dim: usize,
    /// Samples the timed output covers (test samples, clustered samples, or
    /// queries).
    samples: usize,
    quality_metric: &'static str,
    quality: f64,
    sequential_ms: f64,
    batched_ms: f64,
    outputs_match: bool,
    batched_stats: ExecStats,
    sequential_stats: ExecStats,
}

/// Time `run` in both executor modes (`reps` times each, best wall-clock),
/// and compare outputs. `run` returns `(predictions, quality, stats)`.
fn time_app(
    reps: usize,
    run: impl Fn(ExecMode) -> (Vec<usize>, f64, ExecStats),
) -> (f64, f64, bool, f64, ExecStats, ExecStats) {
    let mut best = [f64::INFINITY; 2];
    let mut outputs: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    let mut quality = 0.0;
    let mut stats = [ExecStats::default(); 2];
    for (slot, mode) in [ExecMode::Sequential, ExecMode::Batched]
        .into_iter()
        .enumerate()
    {
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let (preds, q, s) = run(mode);
            best[slot] = best[slot].min(start.elapsed().as_secs_f64() * 1e3);
            outputs[slot] = preds;
            quality = q;
            stats[slot] = s;
        }
    }
    let matches = outputs[0] == outputs[1];
    (best[0], best[1], matches, quality, stats[0], stats[1])
}

/// One training-pattern record of the schema-v4 `training` section: how the
/// batched-epoch training schedule (classification) and the
/// segmented-reduction clustering update actually executed, from the
/// batched run's [`ExecStats`] counters.
struct TrainingRecord {
    app: &'static str,
    /// `epoch_training` (frozen-epoch scoring + in-order replay) or
    /// `segmented_update` (accumulate-by-assignment collapsed to one
    /// kernel).
    pattern: &'static str,
    /// Training epochs or clustering rounds unrolled into the program.
    passes: usize,
    /// Samples each pass covers.
    train_samples: usize,
    epoch_kernel_ops: usize,
    rescored_samples: usize,
    /// `rescored_samples / (passes x train_samples)`: the fraction of
    /// per-sample predictions the batched schedule had to re-score against
    /// the live class matrix to stay bit-identical to the oracle.
    rescore_rate: f64,
    /// End-to-end app speedup (sequential_ms / batched_ms).
    speedup: f64,
    outputs_match: bool,
}

fn training_records(suite: &AppSuite, apps: &[AppRecord]) -> Vec<TrainingRecord> {
    let by_name = |name: &str| {
        apps.iter()
            .find(|r| r.app == name)
            .expect("app record present")
    };
    let classification = {
        let record = by_name("classification_retrain");
        let passes = suite.classification.epochs();
        let samples = suite.classification.dataset().train.len();
        let rescored = record.batched_stats.rescored_samples;
        TrainingRecord {
            app: record.app,
            pattern: "epoch_training",
            passes,
            train_samples: samples,
            epoch_kernel_ops: record.batched_stats.epoch_kernel_ops,
            rescored_samples: rescored,
            rescore_rate: rescored as f64 / (passes * samples).max(1) as f64,
            speedup: record.sequential_ms / record.batched_ms,
            outputs_match: record.outputs_match,
        }
    };
    let clustering = {
        let record = by_name("clustering");
        let passes = suite.clustering.rounds();
        let samples = suite.clustering.dataset().train.len();
        let rescored = record.batched_stats.rescored_samples;
        TrainingRecord {
            app: record.app,
            pattern: "segmented_update",
            passes,
            train_samples: samples,
            epoch_kernel_ops: record.batched_stats.epoch_kernel_ops,
            rescored_samples: rescored,
            // The segmented update never re-scores today; deriving the rate
            // keeps the record self-consistent if that ever changes.
            rescore_rate: rescored as f64 / (passes * samples).max(1) as f64,
            speedup: record.sequential_ms / record.batched_ms,
            outputs_match: record.outputs_match,
        }
    };
    vec![classification, clustering]
}

/// The three compiled applications, built once and shared between the
/// CPU-mode timing section and the accelerator model section.
struct AppSuite {
    classification: ClassificationApp,
    classification_dim: usize,
    clustering: ClusteringApp,
    clustering_dim: usize,
    matching: MatchingApp,
    matching_dim: usize,
}

fn build_apps(smoke: bool) -> AppSuite {
    let (isolet_params, classification_dim, epochs) = if smoke {
        (
            IsoletParams {
                classes: 4,
                features: 64,
                train_per_class: 4,
                test_per_class: 2,
                noise: 1.5,
                seed: 0xA11,
            },
            256,
            2,
        )
    } else {
        (IsoletParams::default(), 2048, 3)
    };
    let (emg_params, clustering_dim, rounds) = if smoke {
        (
            EmgParams {
                gestures: 3,
                channels: 2,
                window: 16,
                train_per_class: 6,
                test_per_class: 1,
                noise: 0.5,
                phase_jitter: 0.5,
                seed: 0xC1,
            },
            256,
            2,
        )
    } else {
        (
            EmgParams {
                gestures: 8,
                channels: 4,
                window: 64,
                train_per_class: 24,
                test_per_class: 1,
                noise: 0.6,
                phase_jitter: 0.5,
                seed: 0xC1,
            },
            2048,
            3,
        )
    };
    let (oms_params, matching_dim, k) = if smoke {
        (
            HyperOmsParams {
                library_size: 16,
                bins: 80,
                peaks: 8,
                queries_per_entry: 1,
                ..HyperOmsParams::default()
            },
            256,
            3,
        )
    } else {
        (
            HyperOmsParams {
                library_size: 256,
                bins: 400,
                peaks: 24,
                queries_per_entry: 2,
                ..HyperOmsParams::default()
            },
            2048,
            10,
        )
    };
    AppSuite {
        classification: ClassificationApp::new(
            isolet_like(&isolet_params),
            classification_dim,
            epochs,
        )
        .expect("app compiles"),
        classification_dim,
        clustering: ClusteringApp::new(emg_like(&emg_params), clustering_dim, rounds)
            .expect("app compiles"),
        clustering_dim,
        matching: MatchingApp::new(hyperoms_like(&oms_params), matching_dim, k)
            .expect("app compiles"),
        matching_dim,
    }
}

fn measure_classification(suite: &AppSuite, reps: usize) -> AppRecord {
    let app = &suite.classification;
    let (sequential_ms, batched_ms, outputs_match, quality, sequential_stats, batched_stats) =
        time_app(reps, |mode| {
            let run = app.run(mode).expect("classification executes");
            (run.predictions, run.accuracy, run.stats)
        });
    AppRecord {
        app: "classification_retrain",
        dataset: "isolet-like",
        dim: suite.classification_dim,
        samples: app.dataset().test.len(),
        quality_metric: "test_accuracy",
        quality,
        sequential_ms,
        batched_ms,
        outputs_match,
        batched_stats,
        sequential_stats,
    }
}

fn measure_clustering(suite: &AppSuite, reps: usize) -> AppRecord {
    let app = &suite.clustering;
    let (sequential_ms, batched_ms, outputs_match, quality, sequential_stats, batched_stats) =
        time_app(reps, |mode| {
            let run = app.run(mode).expect("clustering executes");
            (run.assignments, run.purity, run.stats)
        });
    AppRecord {
        app: "clustering",
        dataset: "emg-like",
        dim: suite.clustering_dim,
        samples: app.dataset().train.len(),
        quality_metric: "purity",
        quality,
        sequential_ms,
        batched_ms,
        outputs_match,
        batched_stats,
        sequential_stats,
    }
}

fn measure_matching(suite: &AppSuite, reps: usize) -> AppRecord {
    let app = &suite.matching;
    let (sequential_ms, batched_ms, outputs_match, quality, sequential_stats, batched_stats) =
        time_app(reps, |mode| {
            let run = app.run(mode).expect("matching executes");
            (run.candidates, run.recall_at_k, run.stats)
        });
    AppRecord {
        app: "spectral_matching_topk",
        dataset: "hyperoms-like",
        dim: suite.matching_dim,
        samples: app.dataset().test.len(),
        quality_metric: "recall_at_k",
        quality,
        sequential_ms,
        batched_ms,
        outputs_match,
        batched_stats,
        sequential_stats,
    }
}

// ---------------------------------------------------------------------------
// accelerator model section
// ---------------------------------------------------------------------------

/// Modeled totals shared by the kernel-grid and app accelerator records.
struct AccelSummary {
    accelerated_stages: usize,
    demoted_stages: usize,
    programming_bits: u64,
    /// Total datapath cycles across all accelerated stages and samples
    /// (per-stage rates are weighted by their own sample counts — a
    /// training stage's epochs×samples passes and an inference stage's
    /// query count never share one denominator).
    modeled_cycles_total: u64,
    modeled_accel_ms: f64,
    modeled_cpu_ms: f64,
    modeled_speedup: f64,
    modeled_energy_uj: f64,
    /// Widest multi-chip tiling any stage needed (1 = everything fit one
    /// device array).
    chips_max: u64,
    /// Total modeled chip-to-chip transfer time of multi-chip tilings (ms);
    /// zero when every stage fit one chip.
    modeled_interconnect_ms: f64,
    outputs_match: bool,
}

fn summarize(report: &hdc_accel::AccelReport, outputs_match: bool) -> AccelSummary {
    AccelSummary {
        accelerated_stages: report.accelerated_stages(),
        demoted_stages: report.demoted.len(),
        programming_bits: report.stages.iter().map(|s| s.programming_bits).sum(),
        modeled_cycles_total: report
            .stages
            .iter()
            .map(|s| s.cycles_per_sample * s.samples as u64)
            .sum(),
        modeled_accel_ms: report.accel_seconds() * 1e3,
        modeled_cpu_ms: report.cpu_seconds() * 1e3,
        modeled_speedup: report.modeled_speedup(),
        modeled_energy_uj: report.energy_joules() * 1e6,
        chips_max: report.stages.iter().map(|s| s.chips).max().unwrap_or(1),
        modeled_interconnect_ms: report
            .stages
            .iter()
            .map(|s| s.interconnect_seconds)
            .sum::<f64>()
            * 1e3,
        outputs_match,
    }
}

/// The shared trailing fields of an accelerator JSON record.
fn summary_json_fields(s: &AccelSummary) -> String {
    format!(
        concat!(
            "        \"accelerated_stages\": {},\n",
            "        \"demoted_stages\": {},\n",
            "        \"programming_bits\": {},\n",
            "        \"modeled_cycles_total\": {},\n",
            "        \"modeled_accel_ms\": {:.6},\n",
            "        \"modeled_cpu_ms\": {:.6},\n",
            "        \"modeled_speedup\": {:.2},\n",
            "        \"modeled_energy_uj\": {:.3},\n",
            "        \"chips_max\": {},\n",
            "        \"modeled_interconnect_ms\": {:.6},\n",
            "        \"outputs_match\": {}\n"
        ),
        s.accelerated_stages,
        s.demoted_stages,
        s.programming_bits,
        s.modeled_cycles_total,
        s.modeled_accel_ms,
        s.modeled_cpu_ms,
        s.modeled_speedup,
        s.modeled_energy_uj,
        s.chips_max,
        s.modeled_interconnect_ms,
        s.outputs_match,
    )
}

/// One kernel-grid point on one modeled accelerator.
struct AccelKernelRecord {
    cfg: Config,
    target: Target,
    summary: AccelSummary,
}

/// Model one unperforated kernel-grid point on `target`: run it through the
/// accelerated executor and compare labels against the batched CPU run.
fn measure_accel_kernel(
    cfg: Config,
    target: Target,
    model: &AcceleratorModel,
) -> AccelKernelRecord {
    let (program, preds) = build_program(&cfg);
    let (queries, classes) = build_data(&cfg);
    let (_, reference, _) = run_mode(&program, preds, &queries, &classes, true, 1);
    let ax = AcceleratedExecutor::new(&program, target, model.clone());
    let run = ax
        .run_with(|exec| {
            exec.bind("queries", queries.clone())?;
            exec.bind("classes", classes.clone())?;
            Ok(())
        })
        .expect("accelerated workload executes");
    let labels = run.outputs.indices(preds).expect("labels output").to_vec();
    AccelKernelRecord {
        cfg,
        target,
        summary: summarize(&run.stats.modeled, labels == reference),
    }
}

/// One application on one modeled accelerator.
struct AccelAppRecord {
    app: &'static str,
    target: Target,
    summary: AccelSummary,
}

/// The batched CPU predictions each accelerated app run is compared
/// against, computed once and shared across all accelerator targets.
struct AppReferences {
    classification: Vec<usize>,
    clustering: Vec<usize>,
    matching: Vec<usize>,
}

fn app_references(suite: &AppSuite) -> AppReferences {
    AppReferences {
        classification: suite
            .classification
            .run(ExecMode::Batched)
            .expect("classification executes")
            .predictions,
        clustering: suite
            .clustering
            .run(ExecMode::Batched)
            .expect("clustering executes")
            .assignments,
        matching: suite
            .matching
            .run(ExecMode::Batched)
            .expect("matching executes")
            .candidates,
    }
}

/// Model all three applications on `target`, comparing predictions against
/// the shared batched CPU references.
fn measure_accel_apps(
    suite: &AppSuite,
    refs: &AppReferences,
    target: Target,
    model: &AcceleratorModel,
) -> Vec<AccelAppRecord> {
    let classification = {
        let accel = suite
            .classification
            .run_accelerated(model, target)
            .expect("accelerated classification executes");
        AccelAppRecord {
            app: "classification_retrain",
            target,
            summary: summarize(&accel.modeled, accel.run.predictions == refs.classification),
        }
    };
    let clustering = {
        let accel = suite
            .clustering
            .run_accelerated(model, target)
            .expect("accelerated clustering executes");
        AccelAppRecord {
            app: "clustering",
            target,
            summary: summarize(&accel.modeled, accel.run.assignments == refs.clustering),
        }
    };
    let matching = {
        let accel = suite
            .matching
            .run_accelerated(model, target)
            .expect("accelerated matching executes");
        AccelAppRecord {
            app: "spectral_matching_topk",
            target,
            summary: summarize(&accel.modeled, accel.run.candidates == refs.matching),
        }
    };
    vec![classification, clustering, matching]
}

// ---------------------------------------------------------------------------
// serving section: micro-batching coalescer vs batch-size-1 dispatch
// ---------------------------------------------------------------------------

/// Concurrency levels (submitter lanes) the serving section sweeps.
const SERVING_CONCURRENCY: [usize; 2] = [4, 16];

/// Requests per load run: enough windows for stable percentiles while
/// keeping the smoke tier in CI time.
fn serving_requests(smoke: bool) -> usize {
    if smoke {
        240
    } else {
        960
    }
}

/// One load run: a window policy at one concurrency level.
struct ServingRecord {
    /// `micro_batch` (time/size-windowed coalescing) or `single`
    /// (batch-size-1 dispatch — every request is its own window).
    mode: &'static str,
    window_batch: usize,
    window_delay_us: u64,
    report: LoadReport,
    /// Windows the service dispatched, and how they flushed.
    windows: u64,
    size_full_windows: u64,
    deadline_windows: u64,
    max_window_rows: u64,
}

/// Run the open-loop load generator against the serving stack: the
/// classification app's model behind a [`Service`], each concurrency level
/// under the micro-batching window and under batch-size-1 dispatch, every
/// response checked against the sequential per-request oracle.
fn measure_serving(suite: &AppSuite, smoke: bool) -> Vec<ServingRecord> {
    let model = Arc::new(
        ServableModel::classifier("classification", &suite.classification)
            .expect("servable model builds"),
    );
    let queries: Vec<Vec<f64>> = {
        let test = &suite.classification.dataset().test;
        (0..test.len())
            .map(|i| test.features.row(i).expect("row in range").to_vec())
            .collect()
    };
    let requests = serving_requests(smoke);
    // Offered far above either policy's capacity so both runs are
    // throughput-bound and the QPS comparison is a capacity comparison.
    let offered_qps = 50_000.0;
    let mut records = Vec::new();
    for &concurrency in &SERVING_CONCURRENCY {
        // The micro-batch window is sized to the offered parallelism so
        // saturated lanes flush size-full; the deadline is only the
        // straggler bound (docs/serving.md discusses the tradeoff).
        let policies: [(&'static str, WindowConfig); 2] = [
            (
                "micro_batch",
                WindowConfig {
                    max_batch: concurrency,
                    max_delay: Duration::from_micros(300),
                },
            ),
            (
                "single",
                WindowConfig {
                    max_batch: 1,
                    max_delay: Duration::ZERO,
                },
            ),
        ];
        for (mode, window) in policies {
            let registry = Arc::new(ModelRegistry::new());
            registry.register("classification", Arc::clone(&model));
            let service = Service::start(
                registry,
                ServiceConfig {
                    window,
                    ..ServiceConfig::default()
                },
            );
            let report = run_load(
                &service,
                &model,
                &queries,
                &LoadConfig {
                    model: "classification".to_string(),
                    concurrency,
                    qps: offered_qps,
                    requests,
                    check: true,
                },
            );
            let stats = service.stats();
            service.shutdown();
            records.push(ServingRecord {
                mode,
                window_batch: window.max_batch,
                window_delay_us: window.max_delay.as_micros() as u64,
                report,
                windows: stats.windows,
                size_full_windows: stats.size_full_windows,
                deadline_windows: stats.deadline_windows,
                max_window_rows: stats.max_window_rows,
            });
        }
    }
    records
}

fn serving_record_json(r: &ServingRecord) -> String {
    format!(
        concat!(
            "      {{\n",
            "        \"mode\": \"{}\",\n",
            "        \"window_batch\": {},\n",
            "        \"window_delay_us\": {},\n",
            "        \"concurrency\": {},\n",
            "        \"offered_qps\": {:.1},\n",
            "        \"achieved_qps\": {:.1},\n",
            "        \"completed\": {},\n",
            "        \"failed\": {},\n",
            "        \"mismatched\": {},\n",
            "        \"p50_us\": {},\n",
            "        \"p99_us\": {},\n",
            "        \"mean_us\": {},\n",
            "        \"max_us\": {},\n",
            "        \"windows\": {},\n",
            "        \"size_full_windows\": {},\n",
            "        \"deadline_windows\": {},\n",
            "        \"max_window_rows\": {}\n",
            "      }}"
        ),
        json_escape_free(r.mode),
        r.window_batch,
        r.window_delay_us,
        r.report.concurrency,
        r.report.offered_qps,
        r.report.achieved_qps,
        r.report.completed,
        r.report.failed,
        r.report.mismatched,
        r.report.p50_us,
        r.report.p99_us,
        r.report.mean_us,
        r.report.max_us,
        r.windows,
        r.size_full_windows,
        r.deadline_windows,
        r.max_window_rows,
    )
}

fn serving_json(suite: &AppSuite, records: &[ServingRecord], smoke: bool) -> String {
    let rows: Vec<String> = records.iter().map(serving_record_json).collect();
    format!(
        concat!(
            "  \"serving\": {{\n",
            "    \"model\": \"classification\",\n",
            "    \"dim\": {},\n",
            "    \"requests_per_run\": {},\n",
            "    \"records\": [\n{}\n    ]\n",
            "  }}"
        ),
        suite.classification_dim,
        serving_requests(smoke),
        rows.join(",\n"),
    )
}

/// Updates the online trainer's swap policy publishes after.
const ONLINE_SWAP_EVERY_UPDATES: u64 = 8;

/// One drift scenario replayed prequentially through the serving stack
/// against a static and an adapting copy of the same base model.
struct OnlineRecord {
    scenario: &'static str,
    classes: usize,
    features: usize,
    samples: usize,
    /// Tape index where the drift switches on.
    onset: usize,
    /// Samples per accuracy-over-time window.
    window: usize,
    /// Generations the swap policy published during the replay.
    swaps: u64,
    /// Perceptron updates applied to the shadow.
    updates: u64,
    /// Feedback calls that errored (must be 0).
    feedback_failed: u64,
    /// Responses diverging from the live generation's sequential oracle
    /// (must be 0 — no request may observe a torn swap).
    mismatched: u64,
    mean_update_latency_us: u64,
    max_update_latency_us: u64,
    static_accuracy: Vec<f64>,
    adapting_accuracy: Vec<f64>,
    static_post_accuracy: f64,
    adapting_post_accuracy: f64,
    /// Whether the scenario is one the adapting model should beat the
    /// static model on after the onset (label shift is the control: the
    /// class-conditional distributions never move, so no recovery gap is
    /// expected there).
    recovery_expected: bool,
    /// Adapting post-onset accuracy beats static by a clear margin.
    recovered: bool,
}

/// The drift scenarios the online section replays, each with whether
/// post-onset recovery is expected (see [`OnlineRecord::recovery_expected`]).
fn drift_scenarios(smoke: bool) -> Vec<(DriftScenario, bool)> {
    if smoke {
        vec![
            (
                label_shift(&LabelShiftParams {
                    pre_samples: 40,
                    post_samples: 40,
                    ..LabelShiftParams::default()
                }),
                false,
            ),
            (
                incremental_classes(&IncrementalClassParams {
                    pre_samples: 30,
                    post_samples: 60,
                    ..IncrementalClassParams::default()
                }),
                true,
            ),
            (
                concept_drift(&ConceptDriftParams {
                    pre_samples: 30,
                    post_samples: 60,
                    ..ConceptDriftParams::default()
                }),
                true,
            ),
        ]
    } else {
        vec![
            (label_shift(&LabelShiftParams::default()), false),
            (
                incremental_classes(&IncrementalClassParams::default()),
                true,
            ),
            (concept_drift(&ConceptDriftParams::default()), true),
        ]
    }
}

/// Replay each drift tape prequentially (predict, then learn) through a
/// service carrying two registry entries for the same base model: `static`
/// never adapts, `adapting` takes every tape sample as labeled feedback
/// through [`Service::feedback`] under an every-N-updates swap policy.
/// Every response is checked against the live generation's sequential
/// oracle — feedback runs on this thread, so the generation each query
/// resolves is deterministic.
fn measure_online(smoke: bool) -> Vec<OnlineRecord> {
    let dim = if smoke { 128 } else { 256 };
    let window = if smoke { 10 } else { 20 };
    let mut records = Vec::new();
    for (scenario, recovery_expected) in drift_scenarios(smoke) {
        let DriftScenario { base, tape } = scenario;
        let app = ClassificationApp::new(base, dim, 2).expect("drift base app builds");
        let model =
            Arc::new(ServableModel::classifier("adapting", &app).expect("servable model builds"));
        let registry = Arc::new(ModelRegistry::new());
        registry.register("static", Arc::clone(&model));
        registry.register("adapting", Arc::clone(&model));
        let service = Service::start(
            Arc::clone(&registry),
            ServiceConfig {
                window: WindowConfig {
                    max_batch: 1,
                    max_delay: Duration::ZERO,
                },
                ..ServiceConfig::default()
            },
        );
        let trainer = OnlineTrainer::attach(
            Arc::clone(&registry),
            "adapting",
            OnlineTrainerConfig {
                policy: SwapPolicy::every_updates(ONLINE_SWAP_EVERY_UPDATES),
                class_shards: None,
            },
        )
        .expect("trainer attaches to classifier");
        service.attach_trainer(trainer);

        let mut current = Arc::clone(&model);
        let mut static_hits = Vec::with_capacity(tape.samples.len());
        let mut adapting_hits = Vec::with_capacity(tape.samples.len());
        let mut mismatched = 0u64;
        let mut feedback_failed = 0u64;
        let mut swaps = 0u64;
        let mut updates = 0u64;
        let mut latency_total_us = 0u128;
        let mut latency_max_us = 0u64;
        for sample in &tape.samples {
            let p_static = service
                .submit("static", sample.features.clone())
                .wait()
                .expect("static query answered");
            let p_adapting = service
                .submit("adapting", sample.features.clone())
                .wait()
                .expect("adapting query answered");
            if p_static != model.oracle_infer(&sample.features).expect("static oracle") {
                mismatched += 1;
            }
            if p_adapting
                != current
                    .oracle_infer(&sample.features)
                    .expect("adapting oracle")
            {
                mismatched += 1;
            }
            static_hits.push(p_static == Prediction::Label(sample.label));
            adapting_hits.push(p_adapting == Prediction::Label(sample.label));
            let fed_at = Instant::now();
            match service.feedback("adapting", &sample.features, sample.label) {
                Ok(out) => {
                    updates += out.updates;
                    if let Some(published) = out.published {
                        swaps += 1;
                        current = published;
                    }
                }
                Err(_) => feedback_failed += 1,
            }
            let us = fed_at.elapsed().as_micros();
            latency_total_us += us;
            latency_max_us = latency_max_us.max(us as u64);
        }
        service.shutdown();

        let post_accuracy = |hits: &[bool]| {
            let post = &hits[tape.onset..];
            post.iter().filter(|&&h| h).count() as f64 / post.len().max(1) as f64
        };
        let static_post_accuracy = post_accuracy(&static_hits);
        let adapting_post_accuracy = post_accuracy(&adapting_hits);
        records.push(OnlineRecord {
            scenario: tape.name,
            classes: tape.classes,
            features: tape.features,
            samples: tape.samples.len(),
            onset: tape.onset,
            window,
            swaps,
            updates,
            feedback_failed,
            mismatched,
            mean_update_latency_us: (latency_total_us / tape.samples.len().max(1) as u128) as u64,
            max_update_latency_us: latency_max_us,
            static_accuracy: windowed_accuracy(&static_hits, window),
            adapting_accuracy: windowed_accuracy(&adapting_hits, window),
            static_post_accuracy,
            adapting_post_accuracy,
            recovery_expected,
            recovered: adapting_post_accuracy > static_post_accuracy + 0.05,
        });
    }
    records
}

fn accuracy_series_json(series: &[f64]) -> String {
    let cells: Vec<String> = series.iter().map(|a| format!("{a:.4}")).collect();
    cells.join(", ")
}

fn online_record_json(r: &OnlineRecord) -> String {
    format!(
        concat!(
            "      {{\n",
            "        \"scenario\": \"{}\",\n",
            "        \"classes\": {},\n",
            "        \"features\": {},\n",
            "        \"samples\": {},\n",
            "        \"onset\": {},\n",
            "        \"accuracy_window\": {},\n",
            "        \"swaps\": {},\n",
            "        \"updates\": {},\n",
            "        \"feedback_failed\": {},\n",
            "        \"mismatched\": {},\n",
            "        \"mean_update_latency_us\": {},\n",
            "        \"max_update_latency_us\": {},\n",
            "        \"static_accuracy\": [{}],\n",
            "        \"adapting_accuracy\": [{}],\n",
            "        \"static_post_accuracy\": {:.4},\n",
            "        \"adapting_post_accuracy\": {:.4},\n",
            "        \"recovery_expected\": {},\n",
            "        \"recovered\": {}\n",
            "      }}"
        ),
        json_escape_free(r.scenario),
        r.classes,
        r.features,
        r.samples,
        r.onset,
        r.window,
        r.swaps,
        r.updates,
        r.feedback_failed,
        r.mismatched,
        r.mean_update_latency_us,
        r.max_update_latency_us,
        accuracy_series_json(&r.static_accuracy),
        accuracy_series_json(&r.adapting_accuracy),
        r.static_post_accuracy,
        r.adapting_post_accuracy,
        r.recovery_expected,
        r.recovered,
    )
}

fn online_json(records: &[OnlineRecord]) -> String {
    let rows: Vec<String> = records.iter().map(online_record_json).collect();
    format!(
        concat!(
            "  \"online\": {{\n",
            "    \"swap_policy\": \"every_updates({})\",\n",
            "    \"records\": [\n{}\n    ]\n",
            "  }}"
        ),
        ONLINE_SWAP_EVERY_UPDATES,
        rows.join(",\n"),
    )
}

/// Host metadata stamped into the report's `cpu` section: what machine and
/// kernel backend produced these numbers, so the perf trajectory separates
/// hardware changes from algorithmic wins.
struct CpuInfo {
    arch: &'static str,
    cores: usize,
    backend: &'static str,
    features: Vec<&'static str>,
    rustc_version: String,
    calibration: Option<CpuCalibration>,
}

fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn gather_cpu_info(calibration: Option<CpuCalibration>) -> CpuInfo {
    CpuInfo {
        arch: std::env::consts::ARCH,
        cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        backend: hdc_core::simd::selected().name(),
        features: hdc_core::simd::detected_features(),
        rustc_version: rustc_version(),
        calibration,
    }
}

fn json_escape_free(s: &str) -> &str {
    // All strings we emit are static identifiers; assert rather than escape.
    assert!(
        !s.contains(['"', '\\']),
        "emitted strings must not need escaping"
    );
    s
}

fn record_json(r: &Record) -> String {
    let speedup = r.sequential_ms / r.batched_ms;
    format!(
        concat!(
            "    {{\n",
            "      \"dim\": {},\n",
            "      \"classes\": {},\n",
            "      \"queries\": {},\n",
            "      \"representation\": \"{}\",\n",
            "      \"metric\": \"{}\",\n",
            "      \"perforation_fraction\": {},\n",
            "      \"sequential_ms\": {:.3},\n",
            "      \"batched_ms\": {:.3},\n",
            "      \"speedup\": {:.2},\n",
            "      \"outputs_match\": {},\n",
            "      \"threads_used\": {},\n",
            "      \"sequential_tensor_bytes_copied\": {},\n",
            "      \"batched_tensor_bytes_copied\": {},\n",
            "      \"batched_kernel_ops\": {},\n",
            "      \"class_shards\": {},\n",
            "      \"shard_merge_ops\": {}\n",
            "    }}"
        ),
        r.cfg.dim,
        r.cfg.classes,
        r.cfg.queries,
        json_escape_free(r.cfg.representation()),
        json_escape_free(r.cfg.metric()),
        r.cfg.perforation_fraction(),
        r.sequential_ms,
        r.batched_ms,
        speedup,
        r.outputs_match,
        r.threads_used,
        r.sequential_stats.tensor_bytes_copied,
        r.batched_stats.tensor_bytes_copied,
        r.batched_stats.batched_kernel_ops,
        r.batched_stats.class_shards,
        r.batched_stats.shard_merge_ops,
    )
}

fn scaling_point_json(p: &ScalingPoint) -> String {
    format!(
        concat!(
            "        {{ \"threads_requested\": {}, \"threads_used\": {}, ",
            "\"batched_ms\": {:.3}, \"speedup_vs_1\": {:.2}, ",
            "\"outputs_match\": {}, \"class_shards\": {}, ",
            "\"shard_merge_ops\": {} }}"
        ),
        p.threads_requested,
        p.threads_used,
        p.batched_ms,
        p.speedup_vs_1,
        p.outputs_match,
        p.class_shards,
        p.shard_merge_ops,
    )
}

fn scaling_json(r: &ScalingRecord) -> String {
    format!(
        concat!(
            "      {{\n",
            "        \"dim\": {},\n",
            "        \"classes\": {},\n",
            "        \"queries\": {},\n",
            "        \"representation\": \"{}\",\n",
            "        \"threads\": [\n{}\n        ]\n",
            "      }}"
        ),
        r.cfg.dim,
        r.cfg.classes,
        r.cfg.queries,
        json_escape_free(r.cfg.representation()),
        r.points
            .iter()
            .map(scaling_point_json)
            .collect::<Vec<_>>()
            .join(",\n"),
    )
}

fn app_json(r: &AppRecord) -> String {
    let speedup = r.sequential_ms / r.batched_ms;
    format!(
        concat!(
            "    {{\n",
            "      \"app\": \"{}\",\n",
            "      \"dataset\": \"{}\",\n",
            "      \"dim\": {},\n",
            "      \"samples\": {},\n",
            "      \"quality_metric\": \"{}\",\n",
            "      \"quality\": {:.4},\n",
            "      \"sequential_ms\": {:.3},\n",
            "      \"batched_ms\": {:.3},\n",
            "      \"speedup\": {:.2},\n",
            "      \"outputs_match\": {},\n",
            "      \"sequential_tensor_bytes_copied\": {},\n",
            "      \"batched_tensor_bytes_copied\": {},\n",
            "      \"batched_kernel_ops\": {}\n",
            "    }}"
        ),
        json_escape_free(r.app),
        json_escape_free(r.dataset),
        r.dim,
        r.samples,
        json_escape_free(r.quality_metric),
        r.quality,
        r.sequential_ms,
        r.batched_ms,
        speedup,
        r.outputs_match,
        r.sequential_stats.tensor_bytes_copied,
        r.batched_stats.tensor_bytes_copied,
        r.batched_stats.batched_kernel_ops,
    )
}

fn training_json(r: &TrainingRecord) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"app\": \"{}\",\n",
            "      \"pattern\": \"{}\",\n",
            "      \"passes\": {},\n",
            "      \"train_samples\": {},\n",
            "      \"epoch_kernel_ops\": {},\n",
            "      \"rescored_samples\": {},\n",
            "      \"rescore_rate\": {:.4},\n",
            "      \"speedup\": {:.2},\n",
            "      \"outputs_match\": {}\n",
            "    }}"
        ),
        json_escape_free(r.app),
        json_escape_free(r.pattern),
        r.passes,
        r.train_samples,
        r.epoch_kernel_ops,
        r.rescored_samples,
        r.rescore_rate,
        r.speedup,
        r.outputs_match,
    )
}

fn accel_kernel_json(r: &AccelKernelRecord) -> String {
    format!(
        concat!(
            "      {{\n",
            "        \"dim\": {},\n",
            "        \"classes\": {},\n",
            "        \"queries\": {},\n",
            "        \"representation\": \"{}\",\n",
            "        \"target\": \"{}\",\n",
            "{}",
            "      }}"
        ),
        r.cfg.dim,
        r.cfg.classes,
        r.cfg.queries,
        json_escape_free(r.cfg.representation()),
        r.target,
        summary_json_fields(&r.summary),
    )
}

fn accel_app_json(r: &AccelAppRecord) -> String {
    format!(
        concat!(
            "      {{\n",
            "        \"app\": \"{}\",\n",
            "        \"target\": \"{}\",\n",
            "{}",
            "      }}"
        ),
        json_escape_free(r.app),
        r.target,
        summary_json_fields(&r.summary),
    )
}

fn accel_params_json(model: &AcceleratorModel) -> String {
    let target_json = |p: &hdc_accel::AccelParams| -> String {
        format!(
            concat!(
                "      {{\n",
                "        \"target\": \"{}\",\n",
                "        \"clock_hz\": {:e},\n",
                "        \"reduce_lane_bits\": {},\n",
                "        \"map_lane_bits\": {},\n",
                "        \"stream_bits_per_sec\": {:e},\n",
                "        \"program_bits_per_sec\": {:e},\n",
                "        \"energy_per_cycle_j\": {:e},\n",
                "        \"energy_per_bit_j\": {:e},\n",
                "        \"array_bits\": {},\n",
                "        \"interconnect_bits_per_sec\": {:e},\n",
                "        \"interconnect_energy_per_bit_j\": {:e}\n",
                "      }}"
            ),
            p.target,
            p.clock_hz,
            p.reduce_lane_bits,
            p.map_lane_bits,
            p.stream_bits_per_sec,
            p.program_bits_per_sec,
            p.energy_per_cycle_j,
            p.energy_per_bit_j,
            p.array_bits,
            p.interconnect_bits_per_sec,
            p.interconnect_energy_per_bit_j,
        )
    };
    format!(
        concat!(
            "    \"cpu_model\": {{ \"flops_per_sec\": {:e}, \"bytes_per_sec\": {:e} }},\n",
            "    \"targets\": [\n{}\n    ]"
        ),
        model.cpu.flops_per_sec,
        model.cpu.bytes_per_sec,
        [&model.digital_asic, &model.reram]
            .into_iter()
            .map(target_json)
            .collect::<Vec<_>>()
            .join(",\n"),
    )
}

/// The `cpu` section: host metadata plus, when `--calibrate` ran, the
/// measured backend throughputs and the [`hdc_accel::CpuParams`] roofline
/// derived from them (always emitted, so consumers see which params the
/// accelerator section was computed against).
fn cpu_json(info: &CpuInfo, model: &AcceleratorModel) -> String {
    let features: Vec<String> = info
        .features
        .iter()
        .map(|f| format!("\"{}\"", json_escape_free(f)))
        .collect();
    let calibration = match &info.calibration {
        Some(c) => format!(
            concat!(
                "    \"calibration\": {{\n",
                "      \"clock_hz_estimate\": {:e},\n",
                "      \"popcount_bits_per_sec\": {:e},\n",
                "      \"flops_per_sec\": {:e},\n",
                "      \"stream_bytes_per_sec\": {:e},\n",
                "      \"popcount_bits_per_cycle\": {:.2},\n",
                "      \"flops_per_cycle\": {:.2}\n",
                "    }},\n"
            ),
            c.clock_hz_estimate,
            c.popcount_bits_per_sec,
            c.flops_per_sec,
            c.stream_bytes_per_sec,
            c.popcount_bits_per_cycle(),
            c.flops_per_cycle(),
        ),
        None => String::new(),
    };
    format!(
        concat!(
            "  \"cpu\": {{\n",
            "    \"arch\": \"{}\",\n",
            "    \"cores_physical\": {},\n",
            "    \"kernel_backend\": \"{}\",\n",
            "    \"features\": [{}],\n",
            "    \"rustc_version\": \"{}\",\n",
            "    \"calibrated\": {},\n",
            "{}",
            "    \"cpu_params\": {{ \"flops_per_sec\": {:e}, \"bytes_per_sec\": {:e} }}\n",
            "  }}"
        ),
        json_escape_free(info.arch),
        info.cores,
        json_escape_free(info.backend),
        features.join(", "),
        json_escape_free(&info.rustc_version),
        info.calibration.is_some(),
        calibration,
        model.cpu.flops_per_sec,
        model.cpu.bytes_per_sec,
    )
}

/// Everything one report run produced, grouped so `emit_json` takes the
/// sections as a unit.
struct ReportSections<'a> {
    records: &'a [Record],
    apps: &'a [AppRecord],
    training: &'a [TrainingRecord],
    scaling: &'a [ScalingRecord],
    cpu: &'a CpuInfo,
    model: &'a AcceleratorModel,
    accel_kernels: &'a [AccelKernelRecord],
    accel_apps: &'a [AccelAppRecord],
    suite: &'a AppSuite,
    serving: &'a [ServingRecord],
    online: &'a [OnlineRecord],
}

fn emit_json(sections: &ReportSections<'_>, smoke: bool) -> String {
    let ReportSections {
        records,
        apps,
        training,
        scaling,
        cpu,
        model,
        accel_kernels,
        accel_apps,
        suite,
        serving,
        online,
    } = sections;
    let rows: Vec<String> = records.iter().map(record_json).collect();
    let app_rows: Vec<String> = apps.iter().map(app_json).collect();
    let training_rows: Vec<String> = training.iter().map(training_json).collect();
    let scaling_rows: Vec<String> = scaling.iter().map(scaling_json).collect();
    let accel_kernel_rows: Vec<String> = accel_kernels.iter().map(accel_kernel_json).collect();
    let accel_app_rows: Vec<String> = accel_apps.iter().map(accel_app_json).collect();
    let sweep: Vec<String> = THREAD_SWEEP.iter().map(|t| t.to_string()).collect();
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"hdc-bench/perf_json/v8\",\n",
            "  \"workload\": \"batched_inference_vs_sequential\",\n",
            "  \"grid\": \"{}\",\n",
            "  \"cores_physical\": {},\n",
            "  \"command\": \"cargo run --release -p hdc-bench --bin perf_json\",\n",
            "{},\n",
            "  \"records\": [\n{}\n  ],\n",
            "  \"apps\": [\n{}\n  ],\n",
            "  \"training\": [\n{}\n  ],\n",
            "  \"scaling\": {{\n",
            "    \"threads_swept\": [{}],\n",
            "    \"cores_physical\": {},\n",
            "    \"records\": [\n{}\n    ]\n",
            "  }},\n",
            "  \"accelerator\": {{\n",
            "{},\n",
            "    \"kernel_grid\": [\n{}\n    ],\n",
            "    \"apps\": [\n{}\n    ]\n",
            "  }},\n",
            "{},\n",
            "{}\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        cpu.cores,
        cpu_json(cpu, model),
        rows.join(",\n"),
        app_rows.join(",\n"),
        training_rows.join(",\n"),
        sweep.join(", "),
        cpu.cores,
        scaling_rows.join(",\n"),
        accel_params_json(model),
        accel_kernel_rows.join(",\n"),
        accel_app_rows.join(",\n"),
        serving_json(suite, serving, smoke),
        online_json(online),
    )
}

const HELP: &str = "\
perf_json — the hpvm-hdc machine-readable performance harness

Runs the fixed inference kernel grid (dims {2048, 10240} x classes {26, 100}
x dense/binarized x perforation {1.0, 0.5}) and the three hdc-apps workloads
(classification with retraining, clustering, top-k spectral matching), each
once on the sequential reference oracle (per-sample stage loops, dense
reference reductions, per-row selection) and once on the batched kernel
path, asserting identical outputs before recording timings. A `training`
section records how the batched-epoch training schedule and the
segmented-reduction clustering update executed (epoch kernels, re-scored
samples, rescore rate, end-to-end speedup). A `scaling` section re-runs the
unperforated kernel grid on the batched path at 1/2/4/8 worker threads
(HDC_NUM_THREADS-equivalent overrides), asserting every point against the
sequential oracle and recording the class-memory shard counts and
reduction-tree merges of the two-axis parallel schedule; the curve is
stamped with the physical core count, so oversubscribed points on a small
host are identifiable. The same
workloads are then re-targeted onto the two modeled HDC accelerators
(hdc-accel: the digital ASIC and the ReRAM PIM design) — outputs asserted
identical to the batched CPU run, modeled accelerator-vs-CPU speedups,
cycle and energy accounting recorded. Only the unperforated kernel-grid
points appear in the accelerator section: stages carrying red_perf are
demoted off the accelerators by the target-assignment legality rules, so
there is nothing to model. The accelerator numbers are fully deterministic
(no wall clocks); see docs/accelerator-model.md for the equations.

A `serving` section runs the open-loop load generator (hdc-serve) against
the classification model behind the micro-batching service: each
concurrency level in {4, 16} under the coalescing window (32 rows / 300us)
and under batch-size-1 dispatch, offered load far above capacity so the
achieved-QPS comparison is a capacity comparison. Every response is checked
against the sequential per-request oracle; failed and mismatched counts
must be zero. p50/p99/mean/max latency are measured from each request's
scheduled arrival (coordinated-omission corrected).

An `online` section replays three seeded drift scenarios (label shift,
incremental classes, concept drift on the EMG-like stream) prequentially
through the serving stack: each tape sample is first classified by a
*static* and an *adapting* registry entry of the same base model, then fed
as labeled feedback to the adapting entry's online trainer, which
publishes re-frozen generations under an every-N-updates swap policy.
Accuracy-over-time for both models, swap counts, and per-sample update
latency are recorded; every response is checked against the live
generation's sequential oracle, and the adapting model must recover
accuracy after the drift onset on the scenarios where the
class-conditional distributions actually move (label shift is the
control).

The `cpu` section stamps host metadata (arch, cores, detected CPU features,
the runtime-selected SIMD kernel backend, rustc version). With --calibrate
it additionally times the selected backend on this host (popcount
throughput, dense flops, streaming bandwidth, an estimated clock) and
derives the CpuParams roofline the accelerator model compares against —
modeled speedups are then relative to *this* machine rather than the
documented reference defaults.

USAGE:
    cargo run --release -p hdc-bench --bin perf_json [-- OPTIONS]

OPTIONS:
    --smoke        Run the tiny CI grid instead of the full grid: 256-dim
                   kernels and miniature app datasets, one rep. Finishes in
                   seconds; used by the CI workflow.
    --calibrate    Measure the selected kernel backend on this host and use
                   the calibrated CpuParams as the accelerator model's CPU
                   baseline (quick sizes under --smoke).
    --out <PATH>   Write the JSON report to PATH (default:
                   BENCH_results.json).
    -h, --help     Print this help and exit.

OUTPUT (schema \"hdc-bench/perf_json/v8\"):
    {
      \"schema\": \"hdc-bench/perf_json/v8\",
      \"grid\": \"full\" | \"smoke\",
      \"cores_physical\": <host cores detected>,
      \"cpu\": {      // host + kernel-backend metadata
        \"arch\", \"cores_physical\",
        \"kernel_backend\",          // scalar | avx2 | avx512 | neon (runtime-selected)
        \"features\": [...],         // detected CPU features
        \"rustc_version\",
        \"calibrated\",              // true when --calibrate ran
        \"calibration\": {          // present only when calibrated
          \"clock_hz_estimate\", \"popcount_bits_per_sec\", \"flops_per_sec\",
          \"stream_bytes_per_sec\", \"popcount_bits_per_cycle\",
          \"flops_per_cycle\" },
        \"cpu_params\": { \"flops_per_sec\", \"bytes_per_sec\" } },  // model baseline
      \"records\": [  // kernel grid, one object per configuration
        { \"dim\", \"classes\", \"queries\",       // workload shape
          \"representation\", \"metric\",         // binarized+hamming | dense+cosine
          \"perforation_fraction\",             // red_perf visit fraction
          \"sequential_ms\", \"batched_ms\", \"speedup\",
          \"outputs_match\",                    // batched == sequential labels
          \"threads_used\",                     // worker threads of the batched run
          \"sequential_tensor_bytes_copied\", \"batched_tensor_bytes_copied\",
          \"batched_kernel_ops\",
          \"class_shards\", \"shard_merge_ops\" } ],  // second parallel axis
      \"apps\": [     // application suite, one object per app
        { \"app\", \"dataset\", \"dim\", \"samples\",
          \"quality_metric\", \"quality\",        // accuracy / purity / recall@k
          \"sequential_ms\", \"batched_ms\", \"speedup\", \"outputs_match\",
          \"sequential_tensor_bytes_copied\", \"batched_tensor_bytes_copied\",
          \"batched_kernel_ops\" } ],
      \"training\": [ // batched training / clustering-update patterns
        { \"app\",
          \"pattern\",                // epoch_training | segmented_update
          \"passes\",                 // training epochs / clustering rounds
          \"train_samples\",
          \"epoch_kernel_ops\",       // one batched kernel per epoch/round
          \"rescored_samples\",       // replays against the live class matrix
          \"rescore_rate\",           // rescored / (passes * train_samples)
          \"speedup\", \"outputs_match\" } ],
      \"scaling\": {  // batched kernel grid across worker-thread counts
        \"threads_swept\": [1, 2, 4, 8],
        \"cores_physical\": <host cores detected>,
        \"records\": [   // unperforated grid points
          { \"dim\", \"classes\", \"queries\", \"representation\",
            \"threads\": [  // one point per swept count
              { \"threads_requested\", \"threads_used\",
                \"batched_ms\", \"speedup_vs_1\",
                \"outputs_match\",     // batched == sequential oracle labels
                \"class_shards\", \"shard_merge_ops\" } ] } ] },
      \"accelerator\": {  // modeled accelerator back end (hdc-accel)
        \"cpu_model\": { \"flops_per_sec\", \"bytes_per_sec\" },  // CPU roofline
        \"targets\": [   // the modeled device parameters, one per target
          { \"target\", \"clock_hz\", \"reduce_lane_bits\", \"map_lane_bits\",
            \"stream_bits_per_sec\", \"program_bits_per_sec\",
            \"energy_per_cycle_j\", \"energy_per_bit_j\",
            \"array_bits\",                     // per-chip capacity (tiling)
            \"interconnect_bits_per_sec\", \"interconnect_energy_per_bit_j\" } ],
        \"kernel_grid\": [  // unperforated grid points x targets
          { \"dim\", \"classes\", \"queries\", \"representation\", \"target\",
            \"accelerated_stages\", \"demoted_stages\",
            \"programming_bits\",               // persistent memories, once
            \"modeled_cycles_total\",           // datapath cycles, all stages x samples
            \"modeled_accel_ms\", \"modeled_cpu_ms\", \"modeled_speedup\",
            \"modeled_energy_uj\",
            \"chips_max\",                      // widest multi-chip tiling
            \"modeled_interconnect_ms\",        // chip-to-chip transfer time
            \"outputs_match\" } ],             // accelerated == batched labels
        \"apps\": [        // application suite x targets, same fields
          { \"app\", \"target\", \"accelerated_stages\", \"demoted_stages\",
            \"programming_bits\", \"modeled_cycles_total\",
            \"modeled_accel_ms\", \"modeled_cpu_ms\", \"modeled_speedup\",
            \"modeled_energy_uj\", \"chips_max\", \"modeled_interconnect_ms\",
            \"outputs_match\" } ]
      },
      \"serving\": {  // micro-batching service vs batch-size-1 dispatch
        \"model\": \"classification\", \"dim\", \"requests_per_run\",
        \"records\": [  // window policies x concurrency levels
          { \"mode\",                  // micro_batch | single
            \"window_batch\", \"window_delay_us\", \"concurrency\",
            \"offered_qps\", \"achieved_qps\",
            \"completed\", \"failed\", \"mismatched\",  // oracle-checked; must be 0
            \"p50_us\", \"p99_us\", \"mean_us\", \"max_us\",  // from scheduled arrival
            \"windows\", \"size_full_windows\", \"deadline_windows\",
            \"max_window_rows\" } ] },
      \"online\": {   // online adaptation under drift (hdc-serve::online)
        \"swap_policy\",            // e.g. every_updates(8)
        \"records\": [  // one object per drift scenario
          { \"scenario\",             // label_shift | incremental_classes | concept_drift
            \"classes\", \"features\", \"samples\",
            \"onset\",                // tape index where the drift switches on
            \"accuracy_window\",      // samples per accuracy-over-time bucket
            \"swaps\", \"updates\",     // generations published / perceptron updates
            \"feedback_failed\",      // must be 0
            \"mismatched\",           // responses off the live oracle; must be 0
            \"mean_update_latency_us\", \"max_update_latency_us\",
            \"static_accuracy\": [..], \"adapting_accuracy\": [..],  // over time
            \"static_post_accuracy\", \"adapting_post_accuracy\",    // after onset
            \"recovery_expected\",    // false for the label-shift control
            \"recovered\" } ] }      // adapting beats static post-onset
    }

Exit status: 0 on success, 1 if any batched or accelerated output diverged
from the reference, 2 on a usage error.";

struct Args {
    smoke: bool,
    calibrate: bool,
    out_path: String,
}

/// Parse flags strictly: unknown flags are an error (exit 2), not silently
/// ignored.
fn parse_args(args: &[String]) -> std::result::Result<Args, String> {
    let mut smoke = false;
    let mut calibrate = false;
    let mut out_path = "BENCH_results.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--calibrate" => calibrate = true,
            "--out" => {
                out_path = it
                    .next()
                    .ok_or_else(|| "--out requires a path argument".to_string())?
                    .clone();
            }
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => {
                return Err(format!(
                    "unrecognized argument `{other}` (run with --help for usage)"
                ))
            }
        }
    }
    Ok(Args {
        smoke,
        calibrate,
        out_path,
    })
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&raw).unwrap_or_else(|msg| {
        eprintln!("error: {msg}");
        std::process::exit(2);
    });
    let smoke = args.smoke;
    let reps = if smoke { 1 } else { 2 };
    let grid = if smoke { smoke_grid() } else { full_grid() };

    // Calibrate before any timing so the accelerator section below models
    // against this host's roofline; without --calibrate the documented
    // default CpuParams apply (and the report says so via "calibrated").
    let calibration = if args.calibrate {
        println!(
            "calibrating CPU: backend={}, {} sizes...",
            hdc_core::simd::selected().name(),
            if smoke { "quick" } else { "full" }
        );
        let cal = hdc_bench::calibrate::calibrate(smoke);
        println!(
            "  clock~{:.2} GHz  popcount {:.1} bits/cyc  {:.2} Gflop/s  stream {:.1} GB/s",
            cal.clock_hz_estimate / 1e9,
            cal.popcount_bits_per_cycle(),
            cal.flops_per_sec / 1e9,
            cal.stream_bytes_per_sec / 1e9,
        );
        Some(cal)
    } else {
        None
    };
    let cpu_info = gather_cpu_info(calibration);

    let mut records = Vec::with_capacity(grid.len());
    let mut all_match = true;
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>5} {:>14} {:>12} {:>8}  match",
        "dim", "classes", "queries", "repr", "perf", "sequential_ms", "batched_ms", "speedup"
    );
    for cfg in grid {
        let record = measure(cfg, reps);
        all_match &= record.outputs_match;
        println!(
            "{:>6} {:>8} {:>8} {:>10} {:>5} {:>14.3} {:>12.3} {:>7.2}x  {}",
            cfg.dim,
            cfg.classes,
            cfg.queries,
            cfg.representation(),
            cfg.perforation_fraction(),
            record.sequential_ms,
            record.batched_ms,
            record.sequential_ms / record.batched_ms,
            if record.outputs_match {
                "ok"
            } else {
                "MISMATCH"
            }
        );
        records.push(record);
    }

    println!(
        "\n{:>24} {:>14} {:>6} {:>14} {:>12} {:>8} {:>16}  match",
        "app", "dataset", "dim", "sequential_ms", "batched_ms", "speedup", "quality"
    );
    let suite = build_apps(smoke);
    let apps = vec![
        measure_classification(&suite, reps),
        measure_clustering(&suite, reps),
        measure_matching(&suite, reps),
    ];
    for record in &apps {
        all_match &= record.outputs_match;
        println!(
            "{:>24} {:>14} {:>6} {:>14.3} {:>12.3} {:>7.2}x {:>12}={:.3}  {}",
            record.app,
            record.dataset,
            record.dim,
            record.sequential_ms,
            record.batched_ms,
            record.sequential_ms / record.batched_ms,
            record.quality_metric,
            record.quality,
            if record.outputs_match {
                "ok"
            } else {
                "MISMATCH"
            }
        );
    }

    // ----- training-pattern section -----
    let training = training_records(&suite, &apps);
    println!(
        "\n{:>24} {:>18} {:>7} {:>8} {:>14} {:>10} {:>13} {:>8}",
        "app",
        "pattern",
        "passes",
        "samples",
        "epoch_kernels",
        "rescored",
        "rescore_rate",
        "speedup"
    );
    for record in &training {
        println!(
            "{:>24} {:>18} {:>7} {:>8} {:>14} {:>10} {:>13.4} {:>7.2}x",
            record.app,
            record.pattern,
            record.passes,
            record.train_samples,
            record.epoch_kernel_ops,
            record.rescored_samples,
            record.rescore_rate,
            record.speedup,
        );
    }

    // ----- scaling section -----
    let grid_for_scaling = if smoke { smoke_grid() } else { full_grid() };
    println!(
        "\n{:>6} {:>8} {:>10} {:>8} {:>12} {:>12} {:>8} {:>8}  match",
        "dim", "classes", "repr", "threads", "batched_ms", "speedup_vs_1", "shards", "merges"
    );
    let scaling = measure_scaling(&grid_for_scaling, reps);
    for record in &scaling {
        for p in &record.points {
            all_match &= p.outputs_match;
            println!(
                "{:>6} {:>8} {:>10} {:>8} {:>12.3} {:>11.2}x {:>8} {:>8}  {}",
                record.cfg.dim,
                record.cfg.classes,
                record.cfg.representation(),
                p.threads_requested,
                p.batched_ms,
                p.speedup_vs_1,
                p.class_shards,
                p.shard_merge_ops,
                if p.outputs_match { "ok" } else { "MISMATCH" }
            );
        }
    }

    // ----- modeled accelerator section -----
    // One shared CpuParams source: the calibrated roofline when --calibrate
    // ran, the documented defaults otherwise.
    let model = match &cpu_info.calibration {
        Some(cal) => AcceleratorModel::with_cpu(cal.cpu_params()),
        None => AcceleratorModel::default(),
    };
    println!(
        "\n{:>6} {:>8} {:>10} {:>18} {:>8} {:>16} {:>14} {:>8}  match",
        "dim",
        "classes",
        "repr",
        "target",
        "stages",
        "modeled_accel_ms",
        "modeled_cpu_ms",
        "speedup"
    );
    let mut accel_kernels = Vec::new();
    for cfg in if smoke { smoke_grid() } else { full_grid() } {
        // red_perf stages demote off the accelerators; only unperforated
        // points have accelerated work to model.
        if cfg.stride != 1 {
            continue;
        }
        for target in ACCEL_TARGETS {
            let record = measure_accel_kernel(cfg, target, &model);
            all_match &= record.summary.outputs_match;
            println!(
                "{:>6} {:>8} {:>10} {:>18} {:>8} {:>16.4} {:>14.4} {:>7.2}x  {}",
                record.cfg.dim,
                record.cfg.classes,
                record.cfg.representation(),
                record.target.to_string(),
                record.summary.accelerated_stages,
                record.summary.modeled_accel_ms,
                record.summary.modeled_cpu_ms,
                record.summary.modeled_speedup,
                if record.summary.outputs_match {
                    "ok"
                } else {
                    "MISMATCH"
                }
            );
            accel_kernels.push(record);
        }
    }
    println!(
        "\n{:>24} {:>18} {:>8} {:>16} {:>14} {:>8}  match",
        "app", "target", "stages", "modeled_accel_ms", "modeled_cpu_ms", "speedup"
    );
    let mut accel_apps = Vec::new();
    let refs = app_references(&suite);
    for target in ACCEL_TARGETS {
        for record in measure_accel_apps(&suite, &refs, target, &model) {
            all_match &= record.summary.outputs_match;
            println!(
                "{:>24} {:>18} {:>8} {:>16.4} {:>14.4} {:>7.2}x  {}",
                record.app,
                record.target.to_string(),
                record.summary.accelerated_stages,
                record.summary.modeled_accel_ms,
                record.summary.modeled_cpu_ms,
                record.summary.modeled_speedup,
                if record.summary.outputs_match {
                    "ok"
                } else {
                    "MISMATCH"
                }
            );
            accel_apps.push(record);
        }
    }

    // ----- serving section -----
    println!(
        "\n{:>12} {:>12} {:>10} {:>12} {:>8} {:>8} {:>8}  ok",
        "mode", "concurrency", "window", "achieved_qps", "p50_us", "p99_us", "windows"
    );
    let serving = measure_serving(&suite, smoke);
    for r in &serving {
        let clean = r.report.failed == 0 && r.report.mismatched == 0;
        all_match &= clean;
        println!(
            "{:>12} {:>12} {:>10} {:>12.0} {:>8} {:>8} {:>8}  {}",
            r.mode,
            r.report.concurrency,
            format!("{}/{}us", r.window_batch, r.window_delay_us),
            r.report.achieved_qps,
            r.report.p50_us,
            r.report.p99_us,
            r.windows,
            if clean { "ok" } else { "FAILED" }
        );
    }
    for &concurrency in &SERVING_CONCURRENCY {
        let qps_of = |mode: &str| {
            serving
                .iter()
                .find(|r| r.mode == mode && r.report.concurrency == concurrency)
                .map(|r| r.report.achieved_qps)
                .unwrap_or(0.0)
        };
        println!(
            "  concurrency {}: micro-batch {:.0} qps vs single {:.0} qps ({:.2}x)",
            concurrency,
            qps_of("micro_batch"),
            qps_of("single"),
            qps_of("micro_batch") / qps_of("single").max(1.0),
        );
    }

    // ----- online-adaptation section -----
    println!(
        "\n{:>20} {:>8} {:>6} {:>8} {:>12} {:>14} {:>10} {:>10}  ok",
        "scenario",
        "samples",
        "swaps",
        "updates",
        "static_post",
        "adapting_post",
        "recovered",
        "mean_us"
    );
    let online = measure_online(smoke);
    for r in &online {
        let clean =
            r.feedback_failed == 0 && r.mismatched == 0 && (!r.recovery_expected || r.recovered);
        all_match &= clean;
        println!(
            "{:>20} {:>8} {:>6} {:>8} {:>12.4} {:>14.4} {:>10} {:>10}  {}",
            r.scenario,
            r.samples,
            r.swaps,
            r.updates,
            r.static_post_accuracy,
            r.adapting_post_accuracy,
            if r.recovery_expected {
                if r.recovered {
                    "yes"
                } else {
                    "NO"
                }
            } else {
                "control"
            },
            r.mean_update_latency_us,
            if clean { "ok" } else { "FAILED" }
        );
    }

    let json = emit_json(
        &ReportSections {
            records: &records,
            apps: &apps,
            training: &training,
            scaling: &scaling,
            cpu: &cpu_info,
            model: &model,
            accel_kernels: &accel_kernels,
            accel_apps: &accel_apps,
            suite: &suite,
            serving: &serving,
            online: &online,
        },
        smoke,
    );
    std::fs::write(&args.out_path, json).expect("write results file");
    println!("\nwrote {}", args.out_path);
    if !all_match {
        eprintln!("error: batched or accelerated outputs diverged from the reference");
        std::process::exit(1);
    }
}
