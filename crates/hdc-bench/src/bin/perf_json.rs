//! `perf_json`: the machine-readable performance harness.
//!
//! Runs a fixed inference workload grid — dims {2048, 10240} × classes
//! {26, 100} × dense/binarized × perforation {1.0, 0.5} — through the
//! `hdc-runtime` executor twice per configuration: once on the per-sample
//! sequential reference oracle and once on the batched matrix-level kernel
//! path. Each record checks that the two paths produced identical
//! classification outputs, then emits timing and copy-accounting data as
//! JSON (default `BENCH_results.json`), establishing the perf-trajectory
//! snapshot every future PR is measured against.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p hdc-bench --bin perf_json              # full grid
//! cargo run --release -p hdc-bench --bin perf_json -- --smoke   # tiny CI grid
//! cargo run --release -p hdc-bench --bin perf_json -- --out my.json
//! ```
//!
//! Exit code is non-zero if any configuration's batched outputs diverge
//! from the sequential oracle, so wiring the smoke grid into CI keeps both
//! the JSON emitter and the equivalence guarantee from rotting.

#![forbid(unsafe_code)]

use hdc_core::element::ElementKind;
use hdc_core::prelude::*;
use hdc_ir::builder::ProgramBuilder;
use hdc_ir::program::{Program, ValueId};
use hdc_ir::stage::ScorePolarity;
use hdc_runtime::{ExecStats, Executor, Value};
use std::time::Instant;

/// One grid point: an inference workload shape.
#[derive(Debug, Clone, Copy)]
struct Config {
    dim: usize,
    classes: usize,
    queries: usize,
    binarized: bool,
    /// Reduction stride: 1 visits every element (fraction 1.0), 2 visits
    /// half (fraction 0.5).
    stride: usize,
}

impl Config {
    fn perforation_fraction(&self) -> f64 {
        1.0 / self.stride as f64
    }

    fn representation(&self) -> &'static str {
        if self.binarized {
            "binarized"
        } else {
            "dense"
        }
    }

    fn metric(&self) -> &'static str {
        if self.binarized {
            "hamming"
        } else {
            "cosine"
        }
    }
}

/// One measured grid point.
struct Record {
    cfg: Config,
    sequential_ms: f64,
    batched_ms: f64,
    outputs_match: bool,
    sequential_stats: ExecStats,
    batched_stats: ExecStats,
}

fn full_grid() -> Vec<Config> {
    let mut grid = Vec::new();
    for &dim in &[2048usize, 10240] {
        for &classes in &[26usize, 100] {
            for &binarized in &[false, true] {
                for &stride in &[1usize, 2] {
                    // The binarized path is cheap enough for the full
                    // 1000-query load; the dense oracle is O(dim*classes)
                    // flops per sample, so trim its batch to keep the grid
                    // under a minute.
                    let queries = if binarized { 1000 } else { 250 };
                    grid.push(Config {
                        dim,
                        classes,
                        queries,
                        binarized,
                        stride,
                    });
                }
            }
        }
    }
    grid
}

fn smoke_grid() -> Vec<Config> {
    let mut grid = Vec::new();
    for &binarized in &[false, true] {
        for &stride in &[1usize, 2] {
            grid.push(Config {
                dim: 256,
                classes: 8,
                queries: 16,
                binarized,
                stride,
            });
        }
    }
    grid
}

/// Build the inference program for one grid point: classify every query row
/// against the class matrix with the representation's natural metric
/// (XOR/popcount Hamming when binarized, cosine when dense).
fn build_program(cfg: &Config) -> (Program, ValueId) {
    let elem = if cfg.binarized {
        ElementKind::Bit
    } else {
        ElementKind::F64
    };
    let mut b = ProgramBuilder::new("perf_infer");
    let q = b.input_matrix("queries", elem, cfg.queries, cfg.dim);
    let c = b.input_matrix("classes", elem, cfg.classes, cfg.dim);
    let polarity = if cfg.binarized {
        ScorePolarity::Distance
    } else {
        ScorePolarity::Similarity
    };
    let dim = cfg.dim;
    let stride = cfg.stride;
    let binarized = cfg.binarized;
    let preds = b.inference_loop("infer", q, c, polarity, |b, s| {
        let d = if binarized {
            b.hamming_distance(s, c)
        } else {
            b.cossim(s, c)
        };
        if stride > 1 {
            b.red_perf(d, 0, dim, stride);
        }
        d
    });
    b.mark_output(preds);
    (b.finish(), preds)
}

/// Deterministic workload data: bipolar class prototypes and queries that
/// are noisy prototype copies, so the classification is non-trivial.
fn build_data(cfg: &Config) -> (Value, Value) {
    let mut rng = HdcRng::seed_from_u64(0xBE2C + cfg.dim as u64 + cfg.classes as u64);
    let classes: HyperMatrix<f64> =
        hdc_core::random::bipolar_hypermatrix(cfg.classes, cfg.dim, &mut rng);
    let query_rows: Vec<HyperVector<f64>> = (0..cfg.queries)
        .map(|i| {
            let mut v = classes
                .row_vector(i % cfg.classes)
                .expect("class row in range");
            // Flip ~10% of the elements.
            for k in 0..cfg.dim / 10 {
                let idx = (k * 7 + i * 13) % cfg.dim;
                let flipped = -v.get(idx).expect("index in range");
                v.set(idx, flipped).expect("index in range");
            }
            v
        })
        .collect();
    let queries = HyperMatrix::from_rows(query_rows).expect("equal row dims");
    if cfg.binarized {
        (
            Value::bit_matrix(BitMatrix::from_dense(&queries)),
            Value::bit_matrix(BitMatrix::from_dense(&classes)),
        )
    } else {
        (Value::matrix(queries), Value::matrix(classes))
    }
}

/// Run one mode `reps` times; report the best wall-clock (milliseconds),
/// the predicted labels, and the executor stats of the final rep.
fn run_mode(
    program: &Program,
    preds: ValueId,
    queries: &Value,
    classes: &Value,
    batched: bool,
    reps: usize,
) -> (f64, Vec<usize>, ExecStats) {
    let mut best_ms = f64::INFINITY;
    let mut labels = Vec::new();
    let mut stats = ExecStats::default();
    for _ in 0..reps.max(1) {
        let mut exec = Executor::new(program).expect("program verifies");
        exec.set_batched_stages(batched);
        exec.set_parallel_loops(batched);
        exec.bind("queries", queries.clone())
            .expect("shape checked");
        exec.bind("classes", classes.clone())
            .expect("shape checked");
        let start = Instant::now();
        let out = exec.run().expect("workload executes");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(ms);
        labels = out.indices(preds).expect("labels output").to_vec();
        stats = exec.stats();
    }
    (best_ms, labels, stats)
}

fn measure(cfg: Config, reps: usize) -> Record {
    let (program, preds) = build_program(&cfg);
    let (queries, classes) = build_data(&cfg);
    let (sequential_ms, seq_labels, sequential_stats) =
        run_mode(&program, preds, &queries, &classes, false, reps);
    let (batched_ms, bat_labels, batched_stats) =
        run_mode(&program, preds, &queries, &classes, true, reps);
    Record {
        cfg,
        sequential_ms,
        batched_ms,
        outputs_match: seq_labels == bat_labels,
        sequential_stats,
        batched_stats,
    }
}

fn json_escape_free(s: &str) -> &str {
    // All strings we emit are static identifiers; assert rather than escape.
    assert!(
        !s.contains(['"', '\\']),
        "emitted strings must not need escaping"
    );
    s
}

fn record_json(r: &Record) -> String {
    let speedup = r.sequential_ms / r.batched_ms;
    format!(
        concat!(
            "    {{\n",
            "      \"dim\": {},\n",
            "      \"classes\": {},\n",
            "      \"queries\": {},\n",
            "      \"representation\": \"{}\",\n",
            "      \"metric\": \"{}\",\n",
            "      \"perforation_fraction\": {},\n",
            "      \"sequential_ms\": {:.3},\n",
            "      \"batched_ms\": {:.3},\n",
            "      \"speedup\": {:.2},\n",
            "      \"outputs_match\": {},\n",
            "      \"sequential_tensor_bytes_copied\": {},\n",
            "      \"batched_tensor_bytes_copied\": {},\n",
            "      \"batched_kernel_ops\": {}\n",
            "    }}"
        ),
        r.cfg.dim,
        r.cfg.classes,
        r.cfg.queries,
        json_escape_free(r.cfg.representation()),
        json_escape_free(r.cfg.metric()),
        r.cfg.perforation_fraction(),
        r.sequential_ms,
        r.batched_ms,
        speedup,
        r.outputs_match,
        r.sequential_stats.tensor_bytes_copied,
        r.batched_stats.tensor_bytes_copied,
        r.batched_stats.batched_kernel_ops,
    )
}

fn emit_json(records: &[Record], smoke: bool) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rows: Vec<String> = records.iter().map(record_json).collect();
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"hdc-bench/perf_json/v1\",\n",
            "  \"workload\": \"batched_inference_vs_sequential\",\n",
            "  \"grid\": \"{}\",\n",
            "  \"cores\": {},\n",
            "  \"command\": \"cargo run --release -p hdc-bench --bin perf_json\",\n",
            "  \"records\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        cores,
        rows.join(",\n")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_results.json".to_string());
    let reps = if smoke { 1 } else { 2 };
    let grid = if smoke { smoke_grid() } else { full_grid() };

    let mut records = Vec::with_capacity(grid.len());
    let mut all_match = true;
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>5} {:>14} {:>12} {:>8}  match",
        "dim", "classes", "queries", "repr", "perf", "sequential_ms", "batched_ms", "speedup"
    );
    for cfg in grid {
        let record = measure(cfg, reps);
        all_match &= record.outputs_match;
        println!(
            "{:>6} {:>8} {:>8} {:>10} {:>5} {:>14.3} {:>12.3} {:>7.2}x  {}",
            cfg.dim,
            cfg.classes,
            cfg.queries,
            cfg.representation(),
            cfg.perforation_fraction(),
            record.sequential_ms,
            record.batched_ms,
            record.sequential_ms / record.batched_ms,
            if record.outputs_match {
                "ok"
            } else {
                "MISMATCH"
            }
        );
        records.push(record);
    }

    let json = emit_json(&records, smoke);
    std::fs::write(&out_path, json).expect("write results file");
    println!("\nwrote {out_path}");
    if !all_match {
        eprintln!("error: batched outputs diverged from the sequential oracle");
        std::process::exit(1);
    }
}
