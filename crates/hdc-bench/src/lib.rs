//! Shared fixtures for the `hdc-bench` benchmark suite.
//!
//! The benchmarks measure the same shapes the paper evaluates: 2048- and
//! 10240-dimensional hypervectors, 26-class ISOLET-style classification, and
//! 617-feature random-projection encoding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;

use hdc_core::prelude::*;

/// Hypervector dimension used by most benchmarks (the paper's default).
pub const DIM: usize = 2048;

/// Number of classes (ISOLET letters).
pub const CLASSES: usize = 26;

/// Number of raw input features (ISOLET).
pub const FEATURES: usize = 617;

/// A deterministic dense bipolar hypervector.
pub fn bipolar_vector(seed: u64, dim: usize) -> HyperVector<f32> {
    let mut rng = HdcRng::seed_from_u64(seed);
    hdc_core::random::bipolar_hypervector(dim, &mut rng)
}

/// A deterministic dense bipolar hypermatrix.
pub fn bipolar_matrix(seed: u64, rows: usize, cols: usize) -> HyperMatrix<f32> {
    let mut rng = HdcRng::seed_from_u64(seed);
    hdc_core::random::bipolar_hypermatrix(rows, cols, &mut rng)
}

/// A deterministic dense uniform hypervector in `[-1, 1]`.
pub fn dense_vector(seed: u64, dim: usize) -> HyperVector<f32> {
    let mut rng = HdcRng::seed_from_u64(seed);
    hdc_core::random::random_hypervector(dim, &mut rng)
}

/// The bit-packed form of [`bipolar_vector`].
pub fn bit_vector(seed: u64, dim: usize) -> BitVector {
    BitVector::from_dense(&bipolar_vector(seed, dim))
}

/// The bit-packed form of [`bipolar_matrix`].
pub fn bit_matrix(seed: u64, rows: usize, cols: usize) -> BitMatrix {
    BitMatrix::from_dense(&bipolar_matrix(seed, rows, cols))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(bipolar_vector(1, 64), bipolar_vector(1, 64));
        assert_eq!(bit_matrix(2, 4, 64), bit_matrix(2, 4, 64));
        assert_eq!(dense_vector(3, 32), dense_vector(3, 32));
    }

    #[test]
    fn bit_fixtures_match_dense() {
        let dense = bipolar_vector(7, 128);
        let bits = bit_vector(7, 128);
        let back: HyperVector<f32> = bits.to_dense();
        assert_eq!(back, dense);
    }
}
