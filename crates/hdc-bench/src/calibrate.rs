//! Per-host CPU calibration for the accelerator cost model.
//!
//! `perf_json --calibrate` times the *selected* kernel backend on the
//! running host and derives the [`CpuParams`] roofline the `hdc-accel`
//! model compares against, so modeled accelerator speedups are relative to
//! this machine rather than a documented reference container:
//!
//! * **popcount throughput** — a timed [`hamming_distance_batch`] over a
//!   10240-dim binarized grid, reported as bits reduced per second;
//! * **flop throughput** — a timed dense [`cosine_similarity_batch`]
//!   (2 flops per element: multiply + add), reported as flops per second;
//! * **streaming bandwidth** — an 8-accumulator sum over an `f64` buffer
//!   far larger than L2, reported as bytes per second;
//! * **clock estimate** — a dependent xorshift64 chain (three shifts and
//!   three xors per iteration, ≈6 latency-bound cycles on current cores),
//!   used only to express the throughputs per cycle in reports. It is an
//!   estimate, not a measurement of the actual clock.
//!
//! The roofline consumed by the model is
//! `CpuParams { flops_per_sec, bytes_per_sec }`; popcount throughput and
//! the per-cycle figures are recorded in the perf report's `cpu` section
//! for trajectory tracking. [`CpuParams::calibrated`] guards against
//! degenerate measurements by falling back to the documented defaults
//! field-wise.

use hdc_accel::CpuParams;
use hdc_core::prelude::*;
use std::hint::black_box;
use std::time::Instant;

/// Measured throughputs of the selected kernel backend on this host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCalibration {
    /// Name of the kernel backend the measurements ran on.
    pub backend: &'static str,
    /// Estimated core clock (Hz) from the xorshift latency chain.
    pub clock_hz_estimate: f64,
    /// Sustained XOR/popcount reduction throughput (operand bits/s).
    pub popcount_bits_per_sec: f64,
    /// Sustained dense multiply-add throughput (flops/s).
    pub flops_per_sec: f64,
    /// Sustained streaming read bandwidth (bytes/s).
    pub stream_bytes_per_sec: f64,
}

impl CpuCalibration {
    /// Popcount bits reduced per estimated cycle.
    pub fn popcount_bits_per_cycle(&self) -> f64 {
        self.popcount_bits_per_sec / self.clock_hz_estimate
    }

    /// Flops per estimated cycle.
    pub fn flops_per_cycle(&self) -> f64 {
        self.flops_per_sec / self.clock_hz_estimate
    }

    /// The [`CpuParams`] roofline these measurements imply (guarded against
    /// degenerate values by [`CpuParams::calibrated`]).
    pub fn cpu_params(&self) -> CpuParams {
        CpuParams::calibrated(self.flops_per_sec, self.stream_bytes_per_sec)
    }
}

/// Median-of-runs timing: `runs` timed invocations of `body`, returning
/// the median elapsed seconds (robust to a stray scheduler hiccup).
fn median_seconds(runs: usize, mut body: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            body();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Estimate the core clock from a latency-bound xorshift64 chain. Each
/// iteration is three shift+xor pairs with a strict data dependency —
/// about 6 cycles on current out-of-order cores.
fn estimate_clock_hz(iters: u64) -> f64 {
    let mut x: u64 = 0x9E3779B97F4A7C15;
    let secs = median_seconds(3, || {
        for _ in 0..iters {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        black_box(x);
    });
    const CYCLES_PER_ITER: f64 = 6.0;
    iters as f64 * CYCLES_PER_ITER / secs
}

/// Time the binarized Hamming grid and report operand bits reduced per
/// second (`queries x classes x dim` XOR+popcount bits per call).
fn measure_popcount_bits_per_sec(dim: usize, classes: usize, queries: usize, runs: usize) -> f64 {
    let q = crate::bit_matrix(11, queries, dim);
    let c = crate::bit_matrix(12, classes, dim);
    let secs = median_seconds(runs, || {
        black_box(hamming_distance_batch(&q, &c, Perforation::NONE).unwrap());
    });
    (queries * classes * dim) as f64 / secs
}

/// Time the dense cosine grid and report flops per second (2 flops per
/// element pair: multiply + add into the chain).
fn measure_flops_per_sec(dim: usize, classes: usize, queries: usize, runs: usize) -> f64 {
    let mut rng = HdcRng::seed_from_u64(13);
    let q: HyperMatrix<f64> = hdc_core::random::random_hypermatrix(queries, dim, &mut rng);
    let c: HyperMatrix<f64> = hdc_core::random::random_hypermatrix(classes, dim, &mut rng);
    let secs = median_seconds(runs, || {
        black_box(cosine_similarity_batch(&q, &c, Perforation::NONE).unwrap());
    });
    (2 * queries * classes * dim) as f64 / secs
}

/// Time a streaming sum over a large `f64` buffer (8 independent
/// accumulators so the reads, not the add chain, are the bottleneck) and
/// report bytes read per second.
fn measure_stream_bytes_per_sec(elems: usize, runs: usize) -> f64 {
    let buf: Vec<f64> = (0..elems).map(|i| (i % 509) as f64 * 0.25).collect();
    let secs = median_seconds(runs, || {
        let mut acc = [0.0f64; 8];
        for chunk in buf.chunks_exact(8) {
            for (a, &v) in acc.iter_mut().zip(chunk) {
                *a += v;
            }
        }
        black_box(acc);
    });
    (elems * std::mem::size_of::<f64>()) as f64 / secs
}

/// Calibrate the selected kernel backend on this host. `quick` shrinks the
/// problem sizes and run counts for CI smoke runs (well under a second);
/// the full pass sizes the grids to amortize timer noise.
pub fn calibrate(quick: bool) -> CpuCalibration {
    let (dim, classes, queries, stream_elems, runs) = if quick {
        (2048, 26, 64, 1 << 20, 3)
    } else {
        (10240, 100, 256, 1 << 23, 5)
    };
    CpuCalibration {
        backend: hdc_core::simd::selected().name(),
        clock_hz_estimate: estimate_clock_hz(if quick { 2_000_000 } else { 20_000_000 }),
        popcount_bits_per_sec: measure_popcount_bits_per_sec(dim, classes, queries, runs),
        flops_per_sec: measure_flops_per_sec(dim, classes, queries / 4, runs),
        stream_bytes_per_sec: measure_stream_bytes_per_sec(stream_elems, runs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_calibration_is_sane() {
        let cal = calibrate(true);
        assert_eq!(cal.backend, hdc_core::simd::selected().name());
        // Any real machine lands well inside these brackets; the point is
        // catching unit slips (ms vs s, bits vs bytes), not precision.
        assert!(cal.clock_hz_estimate > 1.0e8 && cal.clock_hz_estimate < 2.0e10);
        assert!(cal.popcount_bits_per_sec > 1.0e7);
        assert!(cal.flops_per_sec > 1.0e6);
        assert!(cal.stream_bytes_per_sec > 1.0e7);
        assert!(cal.popcount_bits_per_cycle() > 0.0);
        assert!(cal.flops_per_cycle() > 0.0);
        let params = cal.cpu_params();
        assert!(params.flops_per_sec > 0.0 && params.bytes_per_sec > 0.0);
    }
}
