//! Error type for program execution.

use hdc_core::HdcError;
use hdc_ir::verify::VerifyErrors;
use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Errors raised while preparing or executing a program.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The program failed IR verification before execution.
    InvalidProgram(VerifyErrors),
    /// An input value slot was never bound by the host.
    UnboundInput {
        /// Index of the unbound slot.
        value: usize,
        /// Its declared name.
        name: String,
    },
    /// `bind` was called with a name that is not a host-visible (input or
    /// output) slot of the program.
    UnknownBinding {
        /// The name that was looked up.
        name: String,
    },
    /// A value did not have the runtime kind an operation required.
    TypeMismatch {
        /// What was being evaluated.
        context: String,
        /// What the operation expected.
        expected: &'static str,
        /// What it found.
        found: &'static str,
    },
    /// A bound value's shape disagreed with the slot's declared type.
    ShapeMismatch {
        /// The slot's name.
        name: String,
        /// The declared type, printed.
        declared: String,
        /// Description of the provided value.
        provided: String,
    },
    /// A value slot was read before anything wrote it.
    UseBeforeDef {
        /// Index of the slot.
        value: usize,
        /// Its declared name.
        name: String,
    },
    /// An index operand was negative or out of range.
    BadIndex {
        /// What was being evaluated.
        context: String,
        /// The offending index.
        index: i64,
    },
    /// An error propagated from an hdc-core kernel.
    Core(HdcError),
    /// A requested output slot does not exist in the outputs.
    MissingOutput {
        /// Index of the slot.
        value: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidProgram(e) => write!(f, "program failed verification: {e}"),
            RuntimeError::UnboundInput { value, name } => {
                write!(f, "input %{value} \"{name}\" was never bound")
            }
            RuntimeError::UnknownBinding { name } => {
                write!(f, "\"{name}\" is not a bindable input/output slot")
            }
            RuntimeError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(f, "{context}: expected {expected}, found {found}"),
            RuntimeError::ShapeMismatch {
                name,
                declared,
                provided,
            } => write!(
                f,
                "value \"{name}\" declared as {declared} but bound with {provided}"
            ),
            RuntimeError::UseBeforeDef { value, name } => {
                write!(f, "value %{value} \"{name}\" read before definition")
            }
            RuntimeError::BadIndex { context, index } => {
                write!(f, "{context}: bad index {index}")
            }
            RuntimeError::Core(e) => write!(f, "kernel error: {e}"),
            RuntimeError::MissingOutput { value } => {
                write!(f, "value %{value} is not a program output")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<HdcError> for RuntimeError {
    fn from(e: HdcError) -> Self {
        RuntimeError::Core(e)
    }
}

impl From<VerifyErrors> for RuntimeError {
    fn from(e: VerifyErrors) -> Self {
        RuntimeError::InvalidProgram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = RuntimeError::UnboundInput {
            value: 3,
            name: "features".into(),
        };
        assert_eq!(e.to_string(), "input %3 \"features\" was never bound");
        let e = RuntimeError::Core(HdcError::EmptyInput("scores"));
        assert!(e.to_string().contains("scores"));
    }
}
