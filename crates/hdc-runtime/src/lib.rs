//! # hdc-runtime
//!
//! The reference interpreter for HPVM-HDC programs: the execution half of
//! the compile→execute spine.
//!
//! A [`Program`](hdc_ir::Program) built with the HDC++ builder DSL and
//! transformed by the `hdc-passes` pipeline is executed here:
//!
//! * [`Executor`] — walks the verified dataflow graph in order, evaluating
//!   every [`HdcOp`](hdc_ir::HdcOp) intrinsic against the `hdc-core`
//!   kernels, with bit-packed XOR/popcount dispatch for binarized operands
//!   and full `red_perf` (reduction perforation) support.
//! * [`Value`] — the runtime representation of a value slot: scalar, dense
//!   hypervector/hypermatrix, bit-packed vector/matrix, or index vector.
//!   Tensor payloads are `Arc`-shared, so moving values between slots,
//!   snapshotting the store, and collecting outputs never copy a tensor.
//! * [`Outputs`] — typed access to the program's output slots after a run.
//! * [`ExecStats`] — execution counters (instructions, stage samples, bit
//!   kernel dispatches, batched kernel calls, tensor bytes copied,
//!   accelerator-placed stage samples).
//! * [`StageTraceEntry`] — the per-run record of every executed stage node
//!   (name, kind, compiler-assigned target, samples, schedule), exposed via
//!   [`Executor::stage_trace`]. Stages placed on an HDC accelerator target
//!   still execute *functionally* here — the interpreter is the output
//!   oracle for every back end — while the trace lets an accelerator
//!   performance model (the `hdc-accel` crate) charge modeled cycles and
//!   energy against exactly the stage work that ran.
//!
//! # Batched execution
//!
//! The executor runs stage loops in one of two modes:
//!
//! * **Batched** (the default): an `inference_loop` whose body is a single
//!   `hamming_distance` / `cossim` reduction of the sample against a
//!   loop-invariant class matrix is executed as one matrix-level kernel
//!   call from [`hdc_core::batch`] over the whole sample matrix — the
//!   binarized configuration never unpacks a tensor, so
//!   [`ExecStats::tensor_bytes_copied`] stays at zero. An `encoding_loop`
//!   whose body is `matmul` (optionally followed by `sign`) is likewise
//!   executed as one batched matmul. Stage bodies that don't match these
//!   shapes (extra instructions, integer-quantized intermediates, mixed
//!   packed/dense operands) automatically take the sequential path.
//!   `ParallelFor` nodes whose bodies pass a row-independence analysis run
//!   their instances through the rayon compat layer against `Arc` store
//!   snapshots.
//! * **Sequential** ([`Executor::set_batched_stages`]`(false)` /
//!   [`Executor::set_parallel_loops`]`(false)`): one interpreter pass per
//!   sample, exactly the PR-1 reference semantics. This path stays the
//!   *reference oracle*: the batched kernels are bit-identical to it (the
//!   popcounts are exact integers and the dense kernels accumulate in the
//!   same element order), and the `batched_equivalence` integration tests
//!   assert both paths produce identical outputs so any future kernel
//!   change that breaks equivalence is caught immediately.
//!
//! Training loops always run sequentially — perceptron updates are
//! order-dependent, so there is no batched schedule that preserves the
//! reference semantics.
//!
//! # Example
//!
//! ```
//! use hdc_core::prelude::*;
//! use hdc_ir::prelude::*;
//! use hdc_runtime::{Executor, Value};
//!
//! // Listing 1: random-projection encode, Hamming score, arg-min.
//! let mut b = ProgramBuilder::new("classify_one");
//! let features = b.input_vector("features", ElementKind::F32, 16);
//! let rp = b.input_matrix("rp", ElementKind::F32, 64, 16);
//! let classes = b.input_matrix("classes", ElementKind::F32, 2, 64);
//! let encoded = b.matmul(features, rp);
//! let signed = b.sign(encoded);
//! let dists = b.hamming_distance(signed, classes);
//! let label = b.arg_min(dists);
//! b.mark_output(label);
//! let program = b.finish();
//!
//! let mut rng = HdcRng::seed_from_u64(7);
//! let proj = RandomProjection::<f64>::bipolar(64, 16, &mut rng);
//! let x = HyperVector::from_fn(16, |i| i as f64 - 8.0);
//! let target = proj.encode(&x).sign();
//! let classes_data =
//!     HyperMatrix::from_rows(vec![target.clone(), target.sign_flip()]).unwrap();
//!
//! let mut exec = Executor::new(&program).unwrap();
//! exec.bind("features", Value::vector(x)).unwrap();
//! exec.bind("rp", Value::matrix(proj.matrix().clone())).unwrap();
//! exec.bind("classes", Value::matrix(classes_data)).unwrap();
//! let outputs = exec.run().unwrap();
//! assert_eq!(outputs.scalar(label).unwrap(), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod executor;
pub mod value;

pub use error::{Result, RuntimeError};
pub use executor::{update_row_in_place, ExecStats, Executor, Outputs, StageTraceEntry};
pub use value::Value;

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::element::ElementKind;
    use hdc_core::ops::ElementwiseOp;
    use hdc_core::prelude::*;
    use hdc_ir::builder::ProgramBuilder;
    use hdc_ir::program::ValueId;
    use hdc_ir::stage::ScorePolarity;

    fn run_unary(
        build: impl FnOnce(&mut ProgramBuilder, ValueId) -> ValueId,
        input: Vec<f64>,
    ) -> (Outputs, ValueId) {
        let mut b = ProgramBuilder::new("unary");
        let a = b.input_vector("a", ElementKind::F64, input.len());
        let r = build(&mut b, a);
        b.mark_output(r);
        let p = b.finish();
        let mut exec = Executor::new(&p).unwrap();
        exec.bind("a", Value::vector(HyperVector::from_vec(input)))
            .unwrap();
        (exec.run().unwrap(), r)
    }

    #[test]
    fn sign_and_flip_and_abs() {
        let (out, r) = run_unary(|b, a| b.sign(a), vec![-2.0, 0.0, 3.0]);
        assert_eq!(out.vector(r).unwrap().as_slice(), &[-1.0, 1.0, 1.0]);
        let (out, r) = run_unary(|b, a| b.sign_flip(a), vec![-2.0, 3.0]);
        assert_eq!(out.vector(r).unwrap().as_slice(), &[2.0, -3.0]);
        let (out, r) = run_unary(|b, a| b.absolute_value(a), vec![-2.5, 4.0]);
        assert_eq!(out.vector(r).unwrap().as_slice(), &[2.5, 4.0]);
    }

    #[test]
    fn cosine_elementwise_and_wrap_shift() {
        let (out, r) = run_unary(|b, a| b.cosine(a), vec![0.0, std::f64::consts::PI]);
        let v = out.vector(r).unwrap();
        assert!((v.get(0).unwrap() - 1.0).abs() < 1e-12);
        assert!((v.get(1).unwrap() + 1.0).abs() < 1e-12);
        let (out, r) = run_unary(|b, a| b.wrap_shift(a, 1), vec![1.0, 2.0, 3.0]);
        assert_eq!(out.vector(r).unwrap().as_slice(), &[3.0, 1.0, 2.0]);
    }

    #[test]
    fn elementwise_binary_ops() {
        let mut b = ProgramBuilder::new("binary");
        let x = b.input_vector("x", ElementKind::F64, 3);
        let y = b.input_vector("y", ElementKind::F64, 3);
        let sum = b.add(x, y);
        let diff = b.sub(x, y);
        let prod = b.mul(x, y);
        let quot = b.div(x, y);
        for v in [sum, diff, prod, quot] {
            b.mark_output(v);
        }
        let p = b.finish();
        let mut exec = Executor::new(&p).unwrap();
        exec.bind(
            "x",
            Value::vector(HyperVector::from_vec(vec![4.0, 6.0, 9.0])),
        )
        .unwrap();
        exec.bind(
            "y",
            Value::vector(HyperVector::from_vec(vec![2.0, 3.0, 3.0])),
        )
        .unwrap();
        let out = exec.run().unwrap();
        assert_eq!(out.vector(sum).unwrap().as_slice(), &[6.0, 9.0, 12.0]);
        assert_eq!(out.vector(diff).unwrap().as_slice(), &[2.0, 3.0, 6.0]);
        assert_eq!(out.vector(prod).unwrap().as_slice(), &[8.0, 18.0, 27.0]);
        assert_eq!(out.vector(quot).unwrap().as_slice(), &[2.0, 2.0, 3.0]);
    }

    #[test]
    fn creation_ops_are_seeded_and_shaped() {
        let mut b = ProgramBuilder::new("create");
        let z = b.zero_matrix(ElementKind::F64, 2, 8);
        let r = b.random_matrix(ElementKind::F64, 3, 8);
        let g = b.gaussian_vector(ElementKind::F64, 8);
        let bp = b.random_bipolar_matrix(ElementKind::F64, 2, 8);
        for v in [z, r, bp] {
            b.mark_output(v);
        }
        b.mark_output(g);
        let p = b.finish();
        let out = Executor::new(&p).unwrap().run().unwrap();
        assert!(out.matrix(z).unwrap().as_slice().iter().all(|&x| x == 0.0));
        let rm = out.matrix(r).unwrap();
        assert_eq!((rm.rows(), rm.cols()), (3, 8));
        assert!(rm.as_slice().iter().all(|&x| (-1.0..=1.0).contains(&x)));
        assert!(out
            .matrix(bp)
            .unwrap()
            .as_slice()
            .iter()
            .all(|&x| x == 1.0 || x == -1.0));
        assert_eq!(out.vector(g).unwrap().dimension(), 8);
        // Re-running is deterministic.
        let out2 = Executor::new(&p).unwrap().run().unwrap();
        assert_eq!(out.matrix(r).unwrap(), out2.matrix(r).unwrap());
    }

    #[test]
    fn reductions_selection_and_indexing() {
        let mut b = ProgramBuilder::new("reduce");
        let v = b.input_vector("v", ElementKind::F64, 4);
        let m = b.input_matrix("m", ElementKind::F64, 2, 4);
        let norm = b.l2norm(v);
        let lo = b.arg_min(v);
        let hi = b.arg_max(v);
        let rows_lo = b.arg_min(m);
        let elem = b.get_element(m, 1, Some(2));
        let row = b.get_matrix_row(m, 1);
        let t = b.transpose(m);
        for x in [norm, lo, hi, elem] {
            b.mark_output(x);
        }
        b.mark_output(rows_lo);
        b.mark_output(row);
        b.mark_output(t);
        let p = b.finish();
        let mut exec = Executor::new(&p).unwrap();
        exec.bind(
            "v",
            Value::vector(HyperVector::from_vec(vec![3.0, -4.0, 0.0, 5.0])),
        )
        .unwrap();
        exec.bind(
            "m",
            Value::matrix(
                HyperMatrix::from_flat(2, 4, vec![5.0, 1.0, 2.0, 0.5, 9.0, 3.0, -1.0, 4.0])
                    .unwrap(),
            ),
        )
        .unwrap();
        let out = exec.run().unwrap();
        assert!((out.scalar(norm).unwrap() - (9.0f64 + 16.0 + 25.0).sqrt()).abs() < 1e-12);
        assert_eq!(out.scalar(lo).unwrap(), 1.0);
        assert_eq!(out.scalar(hi).unwrap(), 3.0);
        assert_eq!(out.indices(rows_lo).unwrap(), &[3, 2]);
        assert_eq!(out.scalar(elem).unwrap(), -1.0);
        assert_eq!(out.vector(row).unwrap().as_slice(), &[9.0, 3.0, -1.0, 4.0]);
        let tm = out.matrix(t).unwrap();
        assert_eq!((tm.rows(), tm.cols()), (4, 2));
        assert_eq!(tm.get(2, 1).unwrap(), -1.0);
    }

    #[test]
    fn set_and_accumulate_rows() {
        let mut b = ProgramBuilder::new("rows");
        let m = b.input_matrix("m", ElementKind::F64, 2, 3);
        let v = b.input_vector("v", ElementKind::F64, 3);
        b.set_matrix_row(m, v, 0);
        b.accumulate_row(m, v, 1);
        b.mark_output(m);
        let p = b.finish();
        let mut exec = Executor::new(&p).unwrap();
        exec.bind(
            "m",
            Value::matrix(HyperMatrix::from_flat(2, 3, vec![0.0; 6]).unwrap()),
        )
        .unwrap();
        exec.bind(
            "v",
            Value::vector(HyperVector::from_vec(vec![1.0, 2.0, 3.0])),
        )
        .unwrap();
        let out = exec.run().unwrap();
        let m_out = out.matrix(m).unwrap();
        assert_eq!(m_out.row(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(m_out.row(1).unwrap(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn type_cast_quantizes() {
        let mut b = ProgramBuilder::new("cast");
        let v = b.input_vector("v", ElementKind::F64, 3);
        let cast = b.type_cast(v, ElementKind::I8);
        b.mark_output(cast);
        let p = b.finish();
        let mut exec = Executor::new(&p).unwrap();
        exec.bind(
            "v",
            Value::vector(HyperVector::from_vec(vec![1.6, -300.0, 2.2])),
        )
        .unwrap();
        let out = exec.run().unwrap();
        assert_eq!(out.vector(cast).unwrap().as_slice(), &[2.0, -128.0, 2.0]);
    }

    #[test]
    fn similarity_metrics_match_core_kernels() {
        let mut b = ProgramBuilder::new("sim");
        let q = b.input_vector("q", ElementKind::F64, 8);
        let m = b.input_matrix("m", ElementKind::F64, 3, 8);
        let cs = b.cossim(q, m);
        let hd = b.hamming_distance(q, m);
        b.mark_output(cs);
        b.mark_output(hd);
        let p = b.finish();
        let mut rng = HdcRng::seed_from_u64(3);
        let qv: HyperVector<f64> = hdc_core::random::bipolar_hypervector(8, &mut rng);
        let mm: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(3, 8, &mut rng);
        let mut exec = Executor::new(&p).unwrap();
        exec.bind("q", Value::vector(qv.clone())).unwrap();
        exec.bind("m", Value::matrix(mm.clone())).unwrap();
        let out = exec.run().unwrap();
        let expect_cs = cosine_similarity_matrix(&qv, &mm, Perforation::NONE).unwrap();
        let expect_hd = hamming_distance_matrix(&qv, &mm, Perforation::NONE).unwrap();
        assert_eq!(out.vector(cs).unwrap(), expect_cs);
        assert_eq!(out.vector(hd).unwrap(), expect_hd);
    }

    #[test]
    fn perforation_annotations_are_honored() {
        let mut b = ProgramBuilder::new("perf");
        let q = b.input_vector("q", ElementKind::F64, 8);
        let m = b.input_matrix("m", ElementKind::F64, 2, 8);
        let d = b.hamming_distance(q, m);
        b.red_perf(d, 0, 8, 2);
        b.mark_output(d);
        let p = b.finish();
        let ones = HyperVector::splat(8, 1.0);
        let flipped = ones.sign_flip();
        let mm = HyperMatrix::from_rows(vec![ones.clone(), flipped]).unwrap();
        let mut exec = Executor::new(&p).unwrap();
        exec.bind("q", Value::vector(ones)).unwrap();
        exec.bind("m", Value::matrix(mm)).unwrap();
        let out = exec.run().unwrap();
        // Only 4 of 8 positions visited; similarity distances not rescaled.
        assert_eq!(out.vector(d).unwrap().as_slice(), &[0.0, 4.0]);
    }

    #[test]
    fn binarized_slots_dispatch_bit_kernels() {
        let mut b = ProgramBuilder::new("bits");
        let q = b.input_vector("q", ElementKind::F64, 128);
        let m = b.input_matrix("m", ElementKind::F64, 4, 128);
        let qs = b.sign(q);
        let ms = b.sign(m);
        let d = b.hamming_distance(qs, ms);
        let label = b.arg_min(d);
        b.mark_output(label);
        let mut p = b.finish();
        // Binarize the program, so the sign results become Bit slots.
        let report = hdc_passes::binarize(&mut p, &hdc_passes::BinarizeOptions::default());
        assert!(report.binarized_values >= 2);
        let mut rng = HdcRng::seed_from_u64(9);
        let qv: HyperVector<f64> = hdc_core::random::random_hypervector(128, &mut rng);
        let mm: HyperMatrix<f64> = hdc_core::random::random_hypermatrix(4, 128, &mut rng);
        let mut exec = Executor::new(&p).unwrap();
        exec.bind("q", Value::vector(qv.clone())).unwrap();
        exec.bind("m", Value::matrix(mm.clone())).unwrap();
        let out = exec.run().unwrap();
        assert!(exec.stats().bit_kernel_ops >= 1, "popcount path used");
        // Reference: dense sign + hamming.
        let expect = hamming_distance_matrix(&qv.sign(), &mm.sign(), Perforation::NONE).unwrap();
        let expect_label = arg_min(expect.as_slice()).unwrap() as f64;
        assert_eq!(out.scalar(label).unwrap(), expect_label);
    }

    #[test]
    fn bit_bind_is_xor() {
        let mut b = ProgramBuilder::new("bind");
        let x = b.input_vector("x", ElementKind::F64, 64);
        let y = b.input_vector("y", ElementKind::F64, 64);
        let xs = b.sign(x);
        let ys = b.sign(y);
        let bound = b.mul(xs, ys);
        b.mark_output(bound);
        let mut p = b.finish();
        hdc_passes::binarize(&mut p, &hdc_passes::BinarizeOptions::default());
        let mut rng = HdcRng::seed_from_u64(4);
        let xv: HyperVector<f64> = hdc_core::random::random_hypervector(64, &mut rng);
        let yv: HyperVector<f64> = hdc_core::random::random_hypervector(64, &mut rng);
        let mut exec = Executor::new(&p).unwrap();
        exec.bind("x", Value::vector(xv.clone())).unwrap();
        exec.bind("y", Value::vector(yv.clone())).unwrap();
        let out = exec.run().unwrap();
        assert!(exec.stats().bit_kernel_ops >= 1);
        let expect = xv.sign().zip_with(&yv.sign(), |a, b| a * b).unwrap();
        assert_eq!(out.vector(bound).unwrap(), expect);
    }

    #[test]
    fn parallel_for_processes_all_rows() {
        let mut b = ProgramBuilder::new("par");
        let m = b.input_matrix("m", ElementKind::F64, 4, 8);
        let out_m = b.input_matrix("out", ElementKind::F64, 4, 8);
        b.mark_output(out_m);
        b.parallel_for("rows", 4, |b, idx| {
            let row = b.get_matrix_row_dyn(m, idx);
            let s = b.sign(row);
            b.set_matrix_row_dyn(out_m, s, idx);
        });
        let p = b.finish();
        let mut rng = HdcRng::seed_from_u64(5);
        let mm: HyperMatrix<f64> = hdc_core::random::random_hypermatrix(4, 8, &mut rng);
        let mut exec = Executor::new(&p).unwrap();
        exec.bind("m", Value::matrix(mm.clone())).unwrap();
        exec.bind("out", Value::matrix(HyperMatrix::zeros(4, 8)))
            .unwrap();
        let out = exec.run().unwrap();
        assert_eq!(out.matrix(out_m).unwrap(), mm.sign());
    }

    #[test]
    fn encoding_and_inference_stages_run_end_to_end() {
        let mut b = ProgramBuilder::new("stages");
        let features = b.input_matrix("features", ElementKind::F64, 6, 16);
        let rp = b.input_matrix("rp", ElementKind::F64, 64, 16);
        let classes = b.input_matrix("classes", ElementKind::F64, 3, 64);
        let encoded = b.encoding_loop("encode", features, 64, |b, q| {
            let e = b.matmul(q, rp);
            b.sign(e)
        });
        let preds = b.inference_loop(
            "infer",
            encoded,
            classes,
            ScorePolarity::Distance,
            |b, q| b.hamming_distance(q, classes),
        );
        b.mark_output(preds);
        let p = b.finish();

        // Three bipolar class prototypes; queries are noisy copies.
        let mut rng = HdcRng::seed_from_u64(6);
        let proj = RandomProjection::<f64>::bipolar(64, 16, &mut rng);
        let prototypes: Vec<HyperVector<f64>> = (0..3)
            .map(|_| hdc_core::random::gaussian_hypervector(16, &mut rng))
            .collect();
        let feature_rows: Vec<HyperVector<f64>> = (0..6)
            .map(|i| {
                let base = &prototypes[i % 3];
                HyperVector::from_fn(16, |j| base.get(j).unwrap() + 0.01 * (i as f64))
            })
            .collect();
        let class_rows: Vec<HyperVector<f64>> = prototypes
            .iter()
            .map(|proto| proj.encode(proto).sign())
            .collect();
        let mut exec = Executor::new(&p).unwrap();
        exec.bind(
            "features",
            Value::matrix(HyperMatrix::from_rows(feature_rows).unwrap()),
        )
        .unwrap();
        exec.bind("rp", Value::matrix(proj.matrix().clone()))
            .unwrap();
        exec.bind(
            "classes",
            Value::matrix(HyperMatrix::from_rows(class_rows).unwrap()),
        )
        .unwrap();
        let out = exec.run().unwrap();
        assert_eq!(out.indices(preds).unwrap(), &[0, 1, 2, 0, 1, 2]);
        assert_eq!(exec.stats().stage_samples, 12, "6 encode + 6 infer");
    }

    #[test]
    fn training_stage_separates_classes() {
        // Two well-separated clusters; training from a zero class matrix
        // must learn to classify them.
        let dim = 64;
        let mut b = ProgramBuilder::new("train");
        let queries = b.input_matrix("queries", ElementKind::F64, 8, dim);
        let labels = b.input_indices("labels", 8);
        let classes = b.input_matrix("classes", ElementKind::F64, 2, dim);
        b.training_loop(
            "train",
            queries,
            labels,
            classes,
            3,
            ScorePolarity::Similarity,
            |b, q| b.cossim(q, classes),
        );
        let preds = b.inference_loop(
            "infer",
            queries,
            classes,
            ScorePolarity::Similarity,
            |b, q| b.cossim(q, classes),
        );
        b.mark_output(preds);
        let p = b.finish();

        let mut rng = HdcRng::seed_from_u64(8);
        let proto_a: HyperVector<f64> = hdc_core::random::bipolar_hypervector(dim, &mut rng);
        let proto_b: HyperVector<f64> = hdc_core::random::bipolar_hypervector(dim, &mut rng);
        let rows: Vec<HyperVector<f64>> = (0..8)
            .map(|i| {
                let proto = if i % 2 == 0 { &proto_a } else { &proto_b };
                // Flip a couple of positions for noise.
                let mut v = proto.clone();
                v.set(i % dim, -v.get(i % dim).unwrap()).unwrap();
                v
            })
            .collect();
        let truth: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let mut exec = Executor::new(&p).unwrap();
        exec.bind(
            "queries",
            Value::matrix(HyperMatrix::from_rows(rows).unwrap()),
        )
        .unwrap();
        exec.bind("labels", Value::indices(truth.clone())).unwrap();
        exec.bind("classes", Value::matrix(HyperMatrix::zeros(2, dim)))
            .unwrap();
        let out = exec.run().unwrap();
        assert_eq!(out.indices(preds).unwrap(), truth.as_slice());
    }

    #[test]
    fn unbound_input_is_reported() {
        let mut b = ProgramBuilder::new("unbound");
        let v = b.input_vector("v", ElementKind::F64, 4);
        let s = b.sign(v);
        b.mark_output(s);
        let p = b.finish();
        let err = Executor::new(&p).unwrap().run().unwrap_err();
        assert!(matches!(err, RuntimeError::UnboundInput { ref name, .. } if name == "v"));
    }

    #[test]
    fn bind_rejects_wrong_shapes() {
        let mut b = ProgramBuilder::new("shape");
        let v = b.input_vector("v", ElementKind::F64, 4);
        let s = b.sign(v);
        b.mark_output(s);
        let p = b.finish();
        let mut exec = Executor::new(&p).unwrap();
        let err = exec
            .bind("v", Value::vector(HyperVector::zeros(5)))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::ShapeMismatch { .. }));
    }

    #[test]
    fn invalid_programs_are_rejected_up_front() {
        use hdc_ir::instr::HdcInstr;
        use hdc_ir::ops::HdcOp;
        use hdc_ir::program::{Node, NodeBody, Program};
        use hdc_ir::Target;
        let mut p = Program::new("bad");
        p.add_node(Node {
            name: "n".into(),
            target: Target::Cpu,
            body: NodeBody::Leaf {
                instrs: vec![HdcInstr::new(
                    HdcOp::Sign,
                    vec![ValueId::new(3).into()],
                    None,
                )],
            },
        });
        assert!(matches!(
            Executor::new(&p),
            Err(RuntimeError::InvalidProgram(_))
        ));
    }

    #[test]
    fn elementwise_op_table_is_complete() {
        // Every ElementwiseOp variant executes.
        for op in [
            ElementwiseOp::Add,
            ElementwiseOp::Sub,
            ElementwiseOp::Mul,
            ElementwiseOp::Div,
        ] {
            let mut b = ProgramBuilder::new("table");
            let x = b.input_vector("x", ElementKind::F64, 2);
            let y = b.input_vector("y", ElementKind::F64, 2);
            let r = match op {
                ElementwiseOp::Add => b.add(x, y),
                ElementwiseOp::Sub => b.sub(x, y),
                ElementwiseOp::Mul => b.mul(x, y),
                ElementwiseOp::Div => b.div(x, y),
            };
            b.mark_output(r);
            let p = b.finish();
            let mut exec = Executor::new(&p).unwrap();
            exec.bind("x", Value::vector(HyperVector::from_vec(vec![8.0, 6.0])))
                .unwrap();
            exec.bind("y", Value::vector(HyperVector::from_vec(vec![2.0, 3.0])))
                .unwrap();
            let out = exec.run().unwrap();
            assert_eq!(
                out.vector(r).unwrap().as_slice(),
                &[op.apply(8.0, 2.0), op.apply(6.0, 3.0)]
            );
        }
    }
}
