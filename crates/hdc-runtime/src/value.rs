//! Runtime values: what a [`ValueId`](hdc_ir::ValueId) slot holds during
//! execution.
//!
//! The interpreter computes in `f64` (the accumulation type of every
//! hdc-core reduction) but stores values in the representation their slot's
//! declared [`ValueType`] calls for: slots binarized to the `Bit` element
//! kind hold packed [`BitVector`] / [`BitMatrix`] payloads, which is what
//! lets the executor dispatch the XOR/popcount Hamming kernels on the
//! binarized path.
//!
//! Tensor payloads are **`Arc`-backed**: cloning a [`Value`] bumps a
//! reference count instead of copying the tensor, so the executor can move
//! operands around, snapshot the store for parallel loops, and return
//! outputs without ever duplicating a megabyte hypermatrix. Copies happen
//! only when a value crosses a representation boundary (pack/unpack/
//! quantize) or when a shared payload must be mutated in place
//! (copy-on-write); both report the bytes they materialized so the executor
//! can account for them in
//! [`ExecStats::tensor_bytes_copied`](crate::ExecStats).

use crate::error::{Result, RuntimeError};
use hdc_core::element::ElementKind;
use hdc_core::{BitMatrix, BitVector, HyperMatrix, HyperVector};
use hdc_ir::types::ValueType;
use std::sync::Arc;

/// A runtime value. Tensor payloads are shared via [`Arc`]; `clone` is O(1).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar (scores, loop indices, scalar arg-min results).
    Scalar(f64),
    /// A dense hypervector.
    Vector(Arc<HyperVector<f64>>),
    /// A dense hypermatrix.
    Matrix(Arc<HyperMatrix<f64>>),
    /// A bit-packed bipolar hypervector (binarized slot).
    Bits(Arc<BitVector>),
    /// A bit-packed bipolar hypermatrix (binarized slot).
    BitMatrix(Arc<BitMatrix>),
    /// An index vector (labels, cluster assignments).
    Indices(Arc<Vec<usize>>),
}

impl Value {
    /// Wrap a dense hypervector.
    pub fn vector(v: HyperVector<f64>) -> Self {
        Value::Vector(Arc::new(v))
    }

    /// Wrap a dense hypermatrix.
    pub fn matrix(m: HyperMatrix<f64>) -> Self {
        Value::Matrix(Arc::new(m))
    }

    /// Wrap a bit-packed hypervector.
    pub fn bits(b: BitVector) -> Self {
        Value::Bits(Arc::new(b))
    }

    /// Wrap a bit-packed hypermatrix.
    pub fn bit_matrix(b: BitMatrix) -> Self {
        Value::BitMatrix(Arc::new(b))
    }

    /// Wrap an index vector.
    pub fn indices(v: Vec<usize>) -> Self {
        Value::Indices(Arc::new(v))
    }

    /// Short name of the runtime kind, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Scalar(_) => "scalar",
            Value::Vector(_) => "vector",
            Value::Matrix(_) => "matrix",
            Value::Bits(_) => "bit-vector",
            Value::BitMatrix(_) => "bit-matrix",
            Value::Indices(_) => "indices",
        }
    }

    /// The scalar payload.
    ///
    /// # Errors
    ///
    /// Returns a type mismatch unless the value is a scalar.
    pub fn as_scalar(&self, context: &str) -> Result<f64> {
        match self {
            Value::Scalar(x) => Ok(*x),
            other => Err(mismatch(context, "scalar", other)),
        }
    }

    /// The index-vector payload.
    ///
    /// # Errors
    ///
    /// Returns a type mismatch unless the value is an index vector.
    pub fn as_indices(&self, context: &str) -> Result<&[usize]> {
        match self {
            Value::Indices(v) => Ok(v),
            other => Err(mismatch(context, "indices", other)),
        }
    }

    /// View the value as a dense `f64` hypervector, unpacking bit vectors.
    /// Always copies; the executor's hot paths use [`Value::dense_vector`]
    /// instead.
    ///
    /// # Errors
    ///
    /// Returns a type mismatch for scalars, matrices and index vectors.
    pub fn to_dense_vector(&self, context: &str) -> Result<HyperVector<f64>> {
        match self {
            Value::Vector(v) => Ok(v.as_ref().clone()),
            Value::Bits(b) => Ok(b.to_dense()),
            other => Err(mismatch(context, "vector", other)),
        }
    }

    /// View the value as a dense `f64` hypermatrix, unpacking bit matrices.
    /// Always copies; the executor's hot paths use [`Value::dense_matrix`]
    /// instead.
    ///
    /// # Errors
    ///
    /// Returns a type mismatch for scalars, vectors and index vectors.
    pub fn to_dense_matrix(&self, context: &str) -> Result<HyperMatrix<f64>> {
        match self {
            Value::Matrix(m) => Ok(m.as_ref().clone()),
            Value::BitMatrix(b) => Ok(b.to_dense()),
            other => Err(mismatch(context, "matrix", other)),
        }
    }

    /// The value as a shared dense hypervector. For a dense payload this is
    /// a reference-count bump (zero bytes copied); for a packed payload the
    /// unpacked copy is materialized and its size reported.
    ///
    /// # Errors
    ///
    /// Returns a type mismatch for scalars, matrices and index vectors.
    pub fn dense_vector(&self, context: &str) -> Result<(Arc<HyperVector<f64>>, usize)> {
        match self {
            Value::Vector(v) => Ok((Arc::clone(v), 0)),
            Value::Bits(b) => {
                let dense: HyperVector<f64> = b.to_dense();
                let bytes = dense.dimension() * 8;
                Ok((Arc::new(dense), bytes))
            }
            other => Err(mismatch(context, "vector", other)),
        }
    }

    /// The value as a shared dense hypermatrix (see [`Value::dense_vector`]).
    ///
    /// # Errors
    ///
    /// Returns a type mismatch for scalars, vectors and index vectors.
    pub fn dense_matrix(&self, context: &str) -> Result<(Arc<HyperMatrix<f64>>, usize)> {
        match self {
            Value::Matrix(m) => Ok((Arc::clone(m), 0)),
            Value::BitMatrix(b) => {
                let dense: HyperMatrix<f64> = b.to_dense();
                let bytes = dense.rows() * dense.cols() * 8;
                Ok((Arc::new(dense), bytes))
            }
            other => Err(mismatch(context, "matrix", other)),
        }
    }

    /// Whether the value is one of the bit-packed kinds.
    pub fn is_packed(&self) -> bool {
        matches!(self, Value::Bits(_) | Value::BitMatrix(_))
    }

    /// Whether the tensor payload is shared with another `Value` (mutating
    /// it in place would trigger a copy-on-write).
    pub fn payload_shared(&self) -> bool {
        match self {
            Value::Scalar(_) => false,
            Value::Vector(v) => Arc::strong_count(v) > 1,
            Value::Matrix(m) => Arc::strong_count(m) > 1,
            Value::Bits(b) => Arc::strong_count(b) > 1,
            Value::BitMatrix(b) => Arc::strong_count(b) > 1,
            Value::Indices(v) => Arc::strong_count(v) > 1,
        }
    }

    /// Size of the payload in bytes (what a full copy would cost).
    pub fn tensor_bytes(&self) -> usize {
        match self {
            Value::Scalar(_) => 0,
            Value::Vector(v) => v.dimension() * 8,
            Value::Matrix(m) => m.rows() * m.cols() * 8,
            Value::Bits(b) => b.storage_bytes(),
            Value::BitMatrix(b) => b.storage_bytes(),
            Value::Indices(v) => v.len() * std::mem::size_of::<usize>(),
        }
    }

    /// Coerce a computed value into the representation `declared` calls
    /// for: pack tensors into bit types for `Bit` slots, unpack when a dense
    /// slot receives packed data, and quantize elements for integer kinds.
    pub fn conform_to(self, declared: &ValueType) -> Value {
        self.conform_to_counted(declared).0
    }

    /// [`Value::conform_to`], also reporting the bytes materialized by the
    /// conversion (`0` when the value already matches the declared
    /// representation).
    pub fn conform_to_counted(self, declared: &ValueType) -> (Value, usize) {
        match declared {
            ValueType::HyperVector {
                elem: ElementKind::Bit,
                ..
            } => match self {
                Value::Bits(b) => (Value::Bits(b), 0),
                Value::Vector(v) => {
                    let packed = BitVector::from_dense(v.as_ref());
                    let bytes = packed.storage_bytes();
                    (Value::bits(packed), bytes)
                }
                other => (other, 0),
            },
            ValueType::HyperMatrix {
                elem: ElementKind::Bit,
                ..
            } => match self {
                Value::BitMatrix(b) => (Value::BitMatrix(b), 0),
                Value::Matrix(m) => {
                    let packed = BitMatrix::from_dense(m.as_ref());
                    let bytes = packed.storage_bytes();
                    (Value::bit_matrix(packed), bytes)
                }
                other => (other, 0),
            },
            ValueType::HyperVector { elem, .. } => match self {
                Value::Bits(b) => {
                    let dense: HyperVector<f64> = b.to_dense();
                    let bytes = dense.dimension() * 8;
                    (Value::vector(dense), bytes)
                }
                Value::Vector(v) => {
                    if elem.is_float() {
                        (Value::Vector(v), 0)
                    } else {
                        let quantized = v.map(|x| quantize(x, *elem));
                        let bytes = quantized.dimension() * 8;
                        (Value::vector(quantized), bytes)
                    }
                }
                other => (other, 0),
            },
            ValueType::HyperMatrix { elem, .. } => match self {
                Value::BitMatrix(b) => {
                    let dense: HyperMatrix<f64> = b.to_dense();
                    let bytes = dense.rows() * dense.cols() * 8;
                    (Value::matrix(dense), bytes)
                }
                Value::Matrix(m) => {
                    if elem.is_float() {
                        (Value::Matrix(m), 0)
                    } else {
                        let quantized = m.map(|x| quantize(x, *elem));
                        let bytes = quantized.rows() * quantized.cols() * 8;
                        (Value::matrix(quantized), bytes)
                    }
                }
                other => (other, 0),
            },
            ValueType::Scalar(elem) => match self {
                Value::Scalar(x) => (Value::Scalar(quantize(x, *elem)), 0),
                other => (other, 0),
            },
            ValueType::IndexVector { .. } => (self, 0),
        }
    }

    /// Whether the value's shape matches the declared type (used when the
    /// host binds inputs).
    pub fn shape_matches(&self, declared: &ValueType) -> bool {
        match (self, declared) {
            (Value::Scalar(_), ValueType::Scalar(_)) => true,
            (Value::Vector(v), ValueType::HyperVector { dim, .. }) => v.dimension() == *dim,
            (Value::Bits(b), ValueType::HyperVector { dim, .. }) => b.dimension() == *dim,
            (Value::Matrix(m), ValueType::HyperMatrix { rows, cols, .. }) => {
                m.rows() == *rows && m.cols() == *cols
            }
            (Value::BitMatrix(b), ValueType::HyperMatrix { rows, cols, .. }) => {
                b.rows() == *rows && b.cols() == *cols
            }
            (Value::Indices(v), ValueType::IndexVector { len }) => v.len() == *len,
            _ => false,
        }
    }

    /// Short description of the payload (kind plus shape) for errors.
    pub fn describe(&self) -> String {
        match self {
            Value::Scalar(_) => "scalar".to_string(),
            Value::Vector(v) => format!("vector[{}]", v.dimension()),
            Value::Bits(b) => format!("bit-vector[{}]", b.dimension()),
            Value::Matrix(m) => format!("matrix[{}x{}]", m.rows(), m.cols()),
            Value::BitMatrix(b) => format!("bit-matrix[{}x{}]", b.rows(), b.cols()),
            Value::Indices(v) => format!("indices[{}]", v.len()),
        }
    }
}

fn mismatch(context: &str, expected: &'static str, found: &Value) -> RuntimeError {
    RuntimeError::TypeMismatch {
        context: context.to_string(),
        expected,
        found: found.kind_name(),
    }
}

/// Round-and-saturate `x` the way [`hdc_core::Element::from_f64`] does for
/// the integer element kinds; floats and bits pass through.
pub fn quantize(x: f64, kind: ElementKind) -> f64 {
    let clamp = |lo: f64, hi: f64| {
        if x.is_nan() {
            0.0
        } else {
            x.round().clamp(lo, hi)
        }
    };
    match kind {
        ElementKind::I8 => clamp(i8::MIN as f64, i8::MAX as f64),
        ElementKind::I16 => clamp(i16::MIN as f64, i16::MAX as f64),
        ElementKind::I32 => clamp(i32::MIN as f64, i32::MAX as f64),
        ElementKind::I64 => clamp(i64::MIN as f64, i64::MAX as f64),
        ElementKind::F32 | ElementKind::F64 | ElementKind::Bit => x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conform_packs_for_bit_slots() {
        let v = Value::vector(HyperVector::from_vec(vec![1.0, -2.0, 0.5, -0.1]));
        let declared = ValueType::HyperVector {
            elem: ElementKind::Bit,
            dim: 4,
        };
        let (packed, copied) = v.conform_to_counted(&declared);
        assert!(copied > 0, "packing materializes a new payload");
        match packed {
            Value::Bits(b) => {
                assert_eq!(b.get(0).unwrap(), 1);
                assert_eq!(b.get(1).unwrap(), -1);
            }
            other => panic!("expected bits, got {}", other.kind_name()),
        }
    }

    #[test]
    fn conform_unpacks_for_dense_slots() {
        let bits = BitVector::from_bits([true, false, true]);
        let declared = ValueType::HyperVector {
            elem: ElementKind::F32,
            dim: 3,
        };
        let dense = Value::bits(bits).conform_to(&declared);
        assert_eq!(
            dense,
            Value::vector(HyperVector::from_vec(vec![-1.0, 1.0, -1.0]))
        );
    }

    #[test]
    fn conform_quantizes_integer_kinds() {
        let v = Value::vector(HyperVector::from_vec(vec![1.6, -300.0, 2.2]));
        let declared = ValueType::HyperVector {
            elem: ElementKind::I8,
            dim: 3,
        };
        match v.conform_to(&declared) {
            Value::Vector(v) => assert_eq!(v.as_slice(), &[2.0, -128.0, 2.0]),
            other => panic!("expected vector, got {}", other.kind_name()),
        }
        assert_eq!(quantize(f64::NAN, ElementKind::I32), 0.0);
        assert_eq!(quantize(1.5, ElementKind::F32), 1.5);
    }

    #[test]
    fn conform_is_free_for_matching_representations() {
        let v = Value::vector(HyperVector::zeros(64));
        let declared = ValueType::HyperVector {
            elem: ElementKind::F64,
            dim: 64,
        };
        let (_, copied) = v.conform_to_counted(&declared);
        assert_eq!(copied, 0);
        let b = Value::bits(BitVector::zeros(64));
        let bit_slot = ValueType::HyperVector {
            elem: ElementKind::Bit,
            dim: 64,
        };
        let (_, copied) = b.conform_to_counted(&bit_slot);
        assert_eq!(copied, 0);
    }

    #[test]
    fn clone_shares_payloads() {
        let v = Value::matrix(HyperMatrix::zeros(8, 8));
        assert!(!v.payload_shared());
        let copy = v.clone();
        assert!(v.payload_shared());
        assert!(copy.payload_shared());
        drop(copy);
        assert!(!v.payload_shared());
        assert_eq!(v.tensor_bytes(), 8 * 8 * 8);
    }

    #[test]
    fn dense_accessors_report_copies() {
        let v = Value::vector(HyperVector::zeros(16));
        let (shared, copied) = v.dense_vector("ctx").unwrap();
        assert_eq!(copied, 0);
        assert_eq!(shared.dimension(), 16);
        let b = Value::bits(BitVector::zeros(16));
        let (unpacked, copied) = b.dense_vector("ctx").unwrap();
        assert_eq!(copied, 16 * 8);
        assert_eq!(unpacked.dimension(), 16);
        let m = Value::bit_matrix(BitMatrix::zeros(2, 16));
        let (dense, copied) = m.dense_matrix("ctx").unwrap();
        assert_eq!(copied, 2 * 16 * 8);
        assert_eq!((dense.rows(), dense.cols()), (2, 16));
    }

    #[test]
    fn shape_checks() {
        let v = Value::vector(HyperVector::zeros(8));
        assert!(v.shape_matches(&ValueType::HyperVector {
            elem: ElementKind::F32,
            dim: 8
        }));
        assert!(!v.shape_matches(&ValueType::HyperVector {
            elem: ElementKind::F32,
            dim: 9
        }));
        assert!(!v.shape_matches(&ValueType::Scalar(ElementKind::F32)));
        let i = Value::indices(vec![1, 2, 3]);
        assert!(i.shape_matches(&ValueType::IndexVector { len: 3 }));
    }

    #[test]
    fn accessors_report_mismatches() {
        let v = Value::Scalar(1.0);
        assert!(v.as_scalar("ctx").is_ok());
        assert!(v.as_indices("ctx").is_err());
        assert!(v.to_dense_vector("ctx").is_err());
        assert!(v.dense_vector("ctx").is_err());
        assert!(v.dense_matrix("ctx").is_err());
        let b = Value::bits(BitVector::zeros(4));
        assert_eq!(b.to_dense_vector("ctx").unwrap().dimension(), 4);
        assert!(b.is_packed());
        assert_eq!(b.describe(), "bit-vector[4]");
    }
}
