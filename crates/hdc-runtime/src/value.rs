//! Runtime values: what a [`ValueId`](hdc_ir::ValueId) slot holds during
//! execution.
//!
//! The interpreter computes in `f64` (the accumulation type of every
//! hdc-core reduction) but stores values in the representation their slot's
//! declared [`ValueType`] calls for: slots binarized to the `Bit` element
//! kind hold packed [`BitVector`] / [`BitMatrix`] payloads, which is what
//! lets the executor dispatch the XOR/popcount Hamming kernels on the
//! binarized path.

use crate::error::{Result, RuntimeError};
use hdc_core::element::ElementKind;
use hdc_core::{BitMatrix, BitVector, HyperMatrix, HyperVector};
use hdc_ir::types::ValueType;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar (scores, loop indices, scalar arg-min results).
    Scalar(f64),
    /// A dense hypervector.
    Vector(HyperVector<f64>),
    /// A dense hypermatrix.
    Matrix(HyperMatrix<f64>),
    /// A bit-packed bipolar hypervector (binarized slot).
    Bits(BitVector),
    /// A bit-packed bipolar hypermatrix (binarized slot).
    BitMatrix(BitMatrix),
    /// An index vector (labels, cluster assignments).
    Indices(Vec<usize>),
}

impl Value {
    /// Short name of the runtime kind, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Scalar(_) => "scalar",
            Value::Vector(_) => "vector",
            Value::Matrix(_) => "matrix",
            Value::Bits(_) => "bit-vector",
            Value::BitMatrix(_) => "bit-matrix",
            Value::Indices(_) => "indices",
        }
    }

    /// The scalar payload.
    ///
    /// # Errors
    ///
    /// Returns a type mismatch unless the value is a scalar.
    pub fn as_scalar(&self, context: &str) -> Result<f64> {
        match self {
            Value::Scalar(x) => Ok(*x),
            other => Err(mismatch(context, "scalar", other)),
        }
    }

    /// The index-vector payload.
    ///
    /// # Errors
    ///
    /// Returns a type mismatch unless the value is an index vector.
    pub fn as_indices(&self, context: &str) -> Result<&[usize]> {
        match self {
            Value::Indices(v) => Ok(v),
            other => Err(mismatch(context, "indices", other)),
        }
    }

    /// View the value as a dense `f64` hypervector, unpacking bit vectors.
    ///
    /// # Errors
    ///
    /// Returns a type mismatch for scalars, matrices and index vectors.
    pub fn to_dense_vector(&self, context: &str) -> Result<HyperVector<f64>> {
        match self {
            Value::Vector(v) => Ok(v.clone()),
            Value::Bits(b) => Ok(b.to_dense()),
            other => Err(mismatch(context, "vector", other)),
        }
    }

    /// View the value as a dense `f64` hypermatrix, unpacking bit matrices.
    ///
    /// # Errors
    ///
    /// Returns a type mismatch for scalars, vectors and index vectors.
    pub fn to_dense_matrix(&self, context: &str) -> Result<HyperMatrix<f64>> {
        match self {
            Value::Matrix(m) => Ok(m.clone()),
            Value::BitMatrix(b) => Ok(b.to_dense()),
            other => Err(mismatch(context, "matrix", other)),
        }
    }

    /// Whether the value is one of the bit-packed kinds.
    pub fn is_packed(&self) -> bool {
        matches!(self, Value::Bits(_) | Value::BitMatrix(_))
    }

    /// Coerce a computed value into the representation `declared` calls
    /// for: pack tensors into bit types for `Bit` slots, unpack when a dense
    /// slot receives packed data, and quantize elements for integer kinds.
    pub fn conform_to(self, declared: &ValueType) -> Value {
        match declared {
            ValueType::HyperVector {
                elem: ElementKind::Bit,
                ..
            } => match self {
                Value::Bits(b) => Value::Bits(b),
                Value::Vector(v) => Value::Bits(BitVector::from_dense(&v)),
                other => other,
            },
            ValueType::HyperMatrix {
                elem: ElementKind::Bit,
                ..
            } => match self {
                Value::BitMatrix(b) => Value::BitMatrix(b),
                Value::Matrix(m) => Value::BitMatrix(BitMatrix::from_dense(&m)),
                other => other,
            },
            ValueType::HyperVector { elem, .. } => match self {
                Value::Bits(b) => Value::Vector(b.to_dense()),
                Value::Vector(v) => Value::Vector(quantize_vector(v, *elem)),
                other => other,
            },
            ValueType::HyperMatrix { elem, .. } => match self {
                Value::BitMatrix(b) => Value::Matrix(b.to_dense()),
                Value::Matrix(m) => Value::Matrix(quantize_matrix(m, *elem)),
                other => other,
            },
            ValueType::Scalar(elem) => match self {
                Value::Scalar(x) => Value::Scalar(quantize(x, *elem)),
                other => other,
            },
            ValueType::IndexVector { .. } => self,
        }
    }

    /// Whether the value's shape matches the declared type (used when the
    /// host binds inputs).
    pub fn shape_matches(&self, declared: &ValueType) -> bool {
        match (self, declared) {
            (Value::Scalar(_), ValueType::Scalar(_)) => true,
            (Value::Vector(v), ValueType::HyperVector { dim, .. }) => v.dimension() == *dim,
            (Value::Bits(b), ValueType::HyperVector { dim, .. }) => b.dimension() == *dim,
            (Value::Matrix(m), ValueType::HyperMatrix { rows, cols, .. }) => {
                m.rows() == *rows && m.cols() == *cols
            }
            (Value::BitMatrix(b), ValueType::HyperMatrix { rows, cols, .. }) => {
                b.rows() == *rows && b.cols() == *cols
            }
            (Value::Indices(v), ValueType::IndexVector { len }) => v.len() == *len,
            _ => false,
        }
    }

    /// Short description of the payload (kind plus shape) for errors.
    pub fn describe(&self) -> String {
        match self {
            Value::Scalar(_) => "scalar".to_string(),
            Value::Vector(v) => format!("vector[{}]", v.dimension()),
            Value::Bits(b) => format!("bit-vector[{}]", b.dimension()),
            Value::Matrix(m) => format!("matrix[{}x{}]", m.rows(), m.cols()),
            Value::BitMatrix(b) => format!("bit-matrix[{}x{}]", b.rows(), b.cols()),
            Value::Indices(v) => format!("indices[{}]", v.len()),
        }
    }
}

fn mismatch(context: &str, expected: &'static str, found: &Value) -> RuntimeError {
    RuntimeError::TypeMismatch {
        context: context.to_string(),
        expected,
        found: found.kind_name(),
    }
}

/// Round-and-saturate `x` the way [`hdc_core::Element::from_f64`] does for
/// the integer element kinds; floats and bits pass through.
pub fn quantize(x: f64, kind: ElementKind) -> f64 {
    let clamp = |lo: f64, hi: f64| {
        if x.is_nan() {
            0.0
        } else {
            x.round().clamp(lo, hi)
        }
    };
    match kind {
        ElementKind::I8 => clamp(i8::MIN as f64, i8::MAX as f64),
        ElementKind::I16 => clamp(i16::MIN as f64, i16::MAX as f64),
        ElementKind::I32 => clamp(i32::MIN as f64, i32::MAX as f64),
        ElementKind::I64 => clamp(i64::MIN as f64, i64::MAX as f64),
        ElementKind::F32 | ElementKind::F64 | ElementKind::Bit => x,
    }
}

fn quantize_vector(v: HyperVector<f64>, kind: ElementKind) -> HyperVector<f64> {
    if kind.is_float() {
        v
    } else {
        v.map(|x| quantize(x, kind))
    }
}

fn quantize_matrix(m: HyperMatrix<f64>, kind: ElementKind) -> HyperMatrix<f64> {
    if kind.is_float() {
        m
    } else {
        m.map(|x| quantize(x, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conform_packs_for_bit_slots() {
        let v = Value::Vector(HyperVector::from_vec(vec![1.0, -2.0, 0.5, -0.1]));
        let declared = ValueType::HyperVector {
            elem: ElementKind::Bit,
            dim: 4,
        };
        let packed = v.conform_to(&declared);
        match packed {
            Value::Bits(b) => {
                assert_eq!(b.get(0).unwrap(), 1);
                assert_eq!(b.get(1).unwrap(), -1);
            }
            other => panic!("expected bits, got {}", other.kind_name()),
        }
    }

    #[test]
    fn conform_unpacks_for_dense_slots() {
        let bits = BitVector::from_bits([true, false, true]);
        let declared = ValueType::HyperVector {
            elem: ElementKind::F32,
            dim: 3,
        };
        let dense = Value::Bits(bits).conform_to(&declared);
        assert_eq!(
            dense,
            Value::Vector(HyperVector::from_vec(vec![-1.0, 1.0, -1.0]))
        );
    }

    #[test]
    fn conform_quantizes_integer_kinds() {
        let v = Value::Vector(HyperVector::from_vec(vec![1.6, -300.0, 2.2]));
        let declared = ValueType::HyperVector {
            elem: ElementKind::I8,
            dim: 3,
        };
        match v.conform_to(&declared) {
            Value::Vector(v) => assert_eq!(v.as_slice(), &[2.0, -128.0, 2.0]),
            other => panic!("expected vector, got {}", other.kind_name()),
        }
        assert_eq!(quantize(f64::NAN, ElementKind::I32), 0.0);
        assert_eq!(quantize(1.5, ElementKind::F32), 1.5);
    }

    #[test]
    fn shape_checks() {
        let v = Value::Vector(HyperVector::zeros(8));
        assert!(v.shape_matches(&ValueType::HyperVector {
            elem: ElementKind::F32,
            dim: 8
        }));
        assert!(!v.shape_matches(&ValueType::HyperVector {
            elem: ElementKind::F32,
            dim: 9
        }));
        assert!(!v.shape_matches(&ValueType::Scalar(ElementKind::F32)));
        let i = Value::Indices(vec![1, 2, 3]);
        assert!(i.shape_matches(&ValueType::IndexVector { len: 3 }));
    }

    #[test]
    fn accessors_report_mismatches() {
        let v = Value::Scalar(1.0);
        assert!(v.as_scalar("ctx").is_ok());
        assert!(v.as_indices("ctx").is_err());
        assert!(v.to_dense_vector("ctx").is_err());
        let b = Value::Bits(BitVector::zeros(4));
        assert_eq!(b.to_dense_vector("ctx").unwrap().dimension(), 4);
        assert!(b.is_packed());
        assert_eq!(b.describe(), "bit-vector[4]");
    }
}
