//! The program executor: a reference interpreter for HPVM-HDC programs.
//!
//! [`Executor`] walks a verified [`Program`] node by node, evaluating every
//! HDC intrinsic against the `hdc-core` kernels. Values live in a store
//! keyed by [`ValueId`]; slots binarized by the compiler (element kind
//! `Bit`) hold bit-packed payloads, and the executor dispatches the
//! XOR/popcount kernels whenever both operands of a Hamming-distance or
//! cosine-similarity reduction are packed — the same specialization the
//! paper's CPU/GPU back ends perform after automatic binarization.
//! `red_perf` annotations are honored by forwarding the [`Perforation`]
//! descriptor into the kernels.
//!
//! Execution semantics worth calling out:
//!
//! * The interpreter computes in `f64` and conforms results to each slot's
//!   declared element kind on store (packing for `Bit`, round-and-saturate
//!   for integer kinds). This makes it a *reference* semantics: back ends
//!   must match its outputs, not its performance.
//! * `ParallelFor` nodes execute their instances sequentially — iterations
//!   are independent by construction, so any parallel schedule must agree
//!   with the sequential one.
//! * `training_loop` implements perceptron-style HDC retraining: on a
//!   misprediction the sample is added to the true class row and subtracted
//!   from the predicted row. A binarized class matrix is unpacked for the
//!   duration of the stage and re-binarized by sign at stage exit.

use crate::error::{Result, RuntimeError};
use crate::value::Value;
use hdc_core::ops::ElementwiseOp;
use hdc_core::similarity::{
    cosine_similarity, cosine_similarity_all_pairs, cosine_similarity_matrix, hamming_distance,
    hamming_distance_all_pairs, hamming_distance_matrix,
};
use hdc_core::{BitMatrix, BitVector, HdcRng, HyperMatrix, HyperVector, Perforation};
use hdc_ir::instr::{HdcInstr, Operand};
use hdc_ir::ops::HdcOp;
use hdc_ir::program::{Node, NodeBody, Program, ValueId, ValueRole};
use hdc_ir::stage::{StageKind, StageNode};
use hdc_ir::types::ValueType;
use rand::SeedableRng;

/// Execution counters, useful for tests and profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Total instructions evaluated (stage bodies count once per sample).
    pub instructions_executed: usize,
    /// Total per-sample stage-body executions.
    pub stage_samples: usize,
    /// Reductions dispatched to the bit-packed XOR/popcount kernels.
    pub bit_kernel_ops: usize,
}

/// The typed outputs of a program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Outputs {
    values: Vec<(ValueId, String, Value)>,
}

impl Outputs {
    /// The output for `id`, if `id` is an output slot.
    pub fn get(&self, id: ValueId) -> Option<&Value> {
        self.values
            .iter()
            .find(|(v, _, _)| *v == id)
            .map(|(_, _, val)| val)
    }

    /// The output with the given slot name.
    pub fn by_name(&self, name: &str) -> Option<&Value> {
        self.values
            .iter()
            .find(|(_, n, _)| n == name)
            .map(|(_, _, val)| val)
    }

    /// All outputs, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &str, &Value)> {
        self.values.iter().map(|(id, n, v)| (*id, n.as_str(), v))
    }

    /// A scalar output.
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is not an output or not a scalar.
    pub fn scalar(&self, id: ValueId) -> Result<f64> {
        self.require(id)?.as_scalar("output")
    }

    /// An index-vector output.
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is not an output or not an index vector.
    pub fn indices(&self, id: ValueId) -> Result<&[usize]> {
        self.require(id)?.as_indices("output")
    }

    /// A tensor output as a dense `f64` hypervector.
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is not an output or not vector shaped.
    pub fn vector(&self, id: ValueId) -> Result<HyperVector<f64>> {
        self.require(id)?.to_dense_vector("output")
    }

    /// A tensor output as a dense `f64` hypermatrix.
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is not an output or not matrix shaped.
    pub fn matrix(&self, id: ValueId) -> Result<HyperMatrix<f64>> {
        self.require(id)?.to_dense_matrix("output")
    }

    fn require(&self, id: ValueId) -> Result<&Value> {
        self.get(id)
            .ok_or(RuntimeError::MissingOutput { value: id.index() })
    }
}

/// The reference interpreter. See the module docs for semantics.
#[derive(Debug)]
pub struct Executor<'p> {
    program: &'p Program,
    store: Vec<Option<Value>>,
    stats: ExecStats,
}

impl<'p> Executor<'p> {
    /// Create an executor for `program`, verifying it first.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidProgram`] if the IR verifier rejects
    /// the program.
    pub fn new(program: &'p Program) -> Result<Self> {
        hdc_ir::verify::verify(program)?;
        Ok(Executor {
            program,
            store: vec![None; program.values().len()],
            stats: ExecStats::default(),
        })
    }

    /// Bind a host-visible (input or output) slot by name.
    ///
    /// The value is conformed to the slot's declared representation (packed
    /// for binarized slots), after its shape is checked. Output slots are
    /// bindable so hosts can pre-populate in/out buffers (e.g. a matrix a
    /// `parallel_for` writes row by row); temporaries are not.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownBinding`] if no input or output slot
    /// has that name, and [`RuntimeError::ShapeMismatch`] if the shape
    /// disagrees with the declared type.
    pub fn bind(&mut self, name: &str, value: Value) -> Result<&mut Self> {
        let id = self
            .program
            .values()
            .iter()
            .position(|v| v.name == name && matches!(v.role, ValueRole::Input | ValueRole::Output))
            .map(ValueId::new)
            .ok_or_else(|| RuntimeError::UnknownBinding {
                name: name.to_string(),
            })?;
        self.bind_id(id, value)
    }

    /// Bind an input slot by id.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ShapeMismatch`] if the value's shape
    /// disagrees with the slot's declared type.
    pub fn bind_id(&mut self, id: ValueId, value: Value) -> Result<&mut Self> {
        let info = self.program.value(id);
        if !value.shape_matches(&info.ty) {
            return Err(RuntimeError::ShapeMismatch {
                name: info.name.clone(),
                declared: info.ty.to_string(),
                provided: value.describe(),
            });
        }
        self.store[id.index()] = Some(value.conform_to(&info.ty));
        Ok(self)
    }

    /// Execution counters accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Execute the program and collect its outputs.
    ///
    /// # Errors
    ///
    /// Returns an error if an input was never bound or any instruction
    /// fails to evaluate.
    pub fn run(&mut self) -> Result<Outputs> {
        let program = self.program;
        for (i, info) in program.values().iter().enumerate() {
            if info.role == ValueRole::Input && self.store[i].is_none() {
                return Err(RuntimeError::UnboundInput {
                    value: i,
                    name: info.name.clone(),
                });
            }
        }
        for node in program.nodes() {
            self.exec_node(node)?;
        }
        let mut values = Vec::new();
        for id in program.values_with_role(ValueRole::Output) {
            let info = program.value(id);
            let value = self.value(id)?.clone();
            values.push((id, info.name.clone(), value));
        }
        Ok(Outputs { values })
    }

    // ------------------------------------------------------------------
    // store access
    // ------------------------------------------------------------------

    fn value(&self, id: ValueId) -> Result<&Value> {
        self.store[id.index()]
            .as_ref()
            .ok_or_else(|| RuntimeError::UseBeforeDef {
                value: id.index(),
                name: self.program.value(id).name.clone(),
            })
    }

    fn set(&mut self, id: ValueId, value: Value) {
        let declared = &self.program.value(id).ty;
        self.store[id.index()] = Some(value.conform_to(declared));
    }

    /// Store without conforming (used for the dense shadow of a binarized
    /// class matrix during training).
    fn set_raw(&mut self, id: ValueId, value: Value) {
        self.store[id.index()] = Some(value);
    }

    fn value_mut(&mut self, id: ValueId) -> Result<&mut Value> {
        let program = self.program;
        match self.store[id.index()].as_mut() {
            Some(v) => Ok(v),
            None => Err(RuntimeError::UseBeforeDef {
                value: id.index(),
                name: program.value(id).name.clone(),
            }),
        }
    }

    fn operand_value_id(&self, instr: &HdcInstr, idx: usize, context: &str) -> Result<ValueId> {
        instr
            .operands
            .get(idx)
            .and_then(Operand::as_value)
            .ok_or_else(|| RuntimeError::TypeMismatch {
                context: context.to_string(),
                expected: "value operand",
                found: "immediate or missing operand",
            })
    }

    fn operand_value(&self, instr: &HdcInstr, idx: usize, context: &str) -> Result<&Value> {
        match instr.operands.get(idx) {
            Some(Operand::Value(v)) => self.value(*v),
            _ => Err(RuntimeError::TypeMismatch {
                context: context.to_string(),
                expected: "value operand",
                found: "immediate or missing operand",
            }),
        }
    }

    fn operand_index(&self, instr: &HdcInstr, idx: usize, context: &str) -> Result<usize> {
        let raw: i64 = match instr.operands.get(idx) {
            Some(Operand::ImmInt(i)) => *i,
            Some(Operand::Value(v)) => self.value(*v)?.as_scalar(context)?.round() as i64,
            None => {
                return Err(RuntimeError::BadIndex {
                    context: context.to_string(),
                    index: -1,
                })
            }
        };
        usize::try_from(raw).map_err(|_| RuntimeError::BadIndex {
            context: context.to_string(),
            index: raw,
        })
    }

    // ------------------------------------------------------------------
    // node execution
    // ------------------------------------------------------------------

    fn exec_node(&mut self, node: &Node) -> Result<()> {
        match &node.body {
            NodeBody::Leaf { instrs } => self.exec_instrs(instrs),
            NodeBody::ParallelFor { count, index, body } => {
                for i in 0..*count {
                    self.set(*index, Value::Scalar(i as f64));
                    self.exec_instrs(body)?;
                }
                Ok(())
            }
            NodeBody::Stage(stage) => self.exec_stage(stage),
        }
    }

    fn exec_instrs(&mut self, instrs: &[HdcInstr]) -> Result<()> {
        for instr in instrs {
            self.exec_instr(instr)?;
        }
        Ok(())
    }

    fn exec_stage(&mut self, stage: &StageNode) -> Result<()> {
        let queries = self
            .value(stage.interface.queries)?
            .to_dense_matrix("stage queries")?;
        match stage.kind {
            StageKind::Encoding => {
                let mut rows = Vec::with_capacity(queries.rows());
                for r in 0..queries.rows() {
                    self.set(stage.body_query, Value::Vector(queries.row_vector(r)?));
                    self.exec_instrs(&stage.body)?;
                    self.stats.stage_samples += 1;
                    rows.push(
                        self.value(stage.body_result)?
                            .to_dense_vector("encoding result")?,
                    );
                }
                self.set(
                    stage.interface.output,
                    Value::Matrix(HyperMatrix::from_rows(rows)?),
                );
            }
            StageKind::Inference => {
                let mut labels = Vec::with_capacity(queries.rows());
                for r in 0..queries.rows() {
                    self.set(stage.body_query, Value::Vector(queries.row_vector(r)?));
                    self.exec_instrs(&stage.body)?;
                    self.stats.stage_samples += 1;
                    let scores = self
                        .value(stage.body_result)?
                        .to_dense_vector("stage scores")?;
                    let winner =
                        stage
                            .polarity
                            .select(scores.as_slice())
                            .ok_or(RuntimeError::Core(hdc_core::HdcError::EmptyInput(
                                "stage scores",
                            )))?;
                    labels.push(winner);
                }
                self.set(stage.interface.output, Value::Indices(labels));
            }
            StageKind::Training { epochs } => {
                let classes_id =
                    stage
                        .interface
                        .classes
                        .ok_or_else(|| RuntimeError::TypeMismatch {
                            context: "training_loop".to_string(),
                            expected: "class hypermatrix",
                            found: "none",
                        })?;
                let labels_id =
                    stage
                        .interface
                        .labels
                        .ok_or_else(|| RuntimeError::TypeMismatch {
                            context: "training_loop".to_string(),
                            expected: "labels",
                            found: "none",
                        })?;
                let truth: Vec<usize> = self
                    .value(labels_id)?
                    .as_indices("training labels")?
                    .to_vec();
                // Keep a dense shadow of the class matrix for the duration of
                // the stage so perceptron updates accumulate; re-binarized on
                // exit if the slot is packed.
                let dense_classes = self
                    .value(classes_id)?
                    .to_dense_matrix("training classes")?;
                self.set_raw(classes_id, Value::Matrix(dense_classes));
                for _epoch in 0..epochs {
                    #[allow(clippy::needless_range_loop)]
                    for r in 0..queries.rows() {
                        let sample = queries.row_vector(r)?;
                        self.set(stage.body_query, Value::Vector(sample.clone()));
                        self.exec_instrs(&stage.body)?;
                        self.stats.stage_samples += 1;
                        let scores = self
                            .value(stage.body_result)?
                            .to_dense_vector("stage scores")?;
                        let pred =
                            stage
                                .polarity
                                .select(scores.as_slice())
                                .ok_or(RuntimeError::Core(hdc_core::HdcError::EmptyInput(
                                    "stage scores",
                                )))?;
                        let label = truth[r];
                        if pred != label {
                            match self.value_mut(classes_id)? {
                                Value::Matrix(classes) => {
                                    update_row_in_place(classes, label, &sample, 1.0)?;
                                    update_row_in_place(classes, pred, &sample, -1.0)?;
                                }
                                other => {
                                    return Err(RuntimeError::TypeMismatch {
                                        context: "training_loop classes".to_string(),
                                        expected: "matrix",
                                        found: other.kind_name(),
                                    })
                                }
                            }
                        }
                    }
                }
                // Conform the trained matrix back to the declared kind.
                let trained = self.value(classes_id)?.clone();
                self.set(classes_id, trained);
                if stage.interface.output != classes_id {
                    let trained = self.value(classes_id)?.clone();
                    self.set(stage.interface.output, trained);
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // instruction execution
    // ------------------------------------------------------------------

    fn exec_instr(&mut self, instr: &HdcInstr) -> Result<()> {
        self.stats.instructions_executed += 1;
        let perf = instr.perforation.unwrap_or(Perforation::NONE);
        let result = match &instr.op {
            HdcOp::Zero => Some(self.make_filled(instr, 0.0)?),
            HdcOp::Random { seed } => Some(self.make_random(instr, *seed, RandomKind::Uniform)?),
            HdcOp::Gaussian { seed } => {
                Some(self.make_random(instr, *seed, RandomKind::Gaussian)?)
            }
            HdcOp::RandomBipolar { seed } => {
                Some(self.make_random(instr, *seed, RandomKind::Bipolar)?)
            }
            HdcOp::WrapShift => {
                let amount = match instr.operands.get(1) {
                    Some(Operand::ImmInt(i)) => *i as isize,
                    Some(Operand::Value(v)) => {
                        self.value(*v)?.as_scalar("wrap_shift amount")?.round() as isize
                    }
                    None => 0,
                };
                let input = self.operand_value(instr, 0, "wrap_shift")?;
                Some(match input {
                    Value::Bits(b) => Value::Bits(b.wrap_shift(amount)),
                    Value::BitMatrix(b) => {
                        let rows: hdc_core::Result<Vec<BitVector>> =
                            b.iter().map(|r| Ok(r.wrap_shift(amount))).collect();
                        Value::BitMatrix(BitMatrix::from_rows(rows?)?)
                    }
                    Value::Vector(v) => Value::Vector(v.wrap_shift(amount)),
                    Value::Matrix(m) => {
                        let rows: Vec<HyperVector<f64>> = (0..m.rows())
                            .map(|r| Ok(m.row_vector(r)?.wrap_shift(amount)))
                            .collect::<Result<_>>()?;
                        Value::Matrix(HyperMatrix::from_rows(rows)?)
                    }
                    other => {
                        return Err(RuntimeError::TypeMismatch {
                            context: "wrap_shift".to_string(),
                            expected: "tensor",
                            found: other.kind_name(),
                        })
                    }
                })
            }
            HdcOp::Sign => {
                let input = self.operand_value(instr, 0, "sign")?;
                Some(match input {
                    // Packed values are bipolar by definition.
                    Value::Bits(b) => Value::Bits(b.clone()),
                    Value::BitMatrix(b) => Value::BitMatrix(b.clone()),
                    Value::Vector(v) => Value::Vector(v.sign()),
                    Value::Matrix(m) => Value::Matrix(m.sign()),
                    Value::Scalar(x) => Value::Scalar(if *x < 0.0 { -1.0 } else { 1.0 }),
                    other => {
                        return Err(RuntimeError::TypeMismatch {
                            context: "sign".to_string(),
                            expected: "tensor or scalar",
                            found: other.kind_name(),
                        })
                    }
                })
            }
            HdcOp::SignFlip => {
                let input = self.operand_value(instr, 0, "sign_flip")?;
                Some(match input {
                    Value::Bits(b) => Value::Bits(b.sign_flip()),
                    Value::BitMatrix(b) => {
                        let rows: Vec<BitVector> = b.iter().map(BitVector::sign_flip).collect();
                        Value::BitMatrix(BitMatrix::from_rows(rows)?)
                    }
                    Value::Vector(v) => Value::Vector(v.sign_flip()),
                    Value::Matrix(m) => Value::Matrix(m.sign_flip()),
                    Value::Scalar(x) => Value::Scalar(-x),
                    other => {
                        return Err(RuntimeError::TypeMismatch {
                            context: "sign_flip".to_string(),
                            expected: "tensor or scalar",
                            found: other.kind_name(),
                        })
                    }
                })
            }
            HdcOp::AbsoluteValue => Some(self.unary_dense(
                instr,
                "abs",
                |v| v.absolute_value(),
                |m| m.absolute_value(),
            )?),
            HdcOp::CosineElementwise => {
                Some(self.unary_dense(instr, "cos", |v| v.cosine(), |m| m.cosine())?)
            }
            HdcOp::Elementwise(op) => Some(self.elementwise(instr, *op)?),
            HdcOp::L2Norm => {
                let input = self.operand_value(instr, 0, "l2norm")?.clone();
                Some(match input {
                    Value::Matrix(_) | Value::BitMatrix(_) => {
                        let m = input.to_dense_matrix("l2norm")?;
                        let norms: Vec<f64> = (0..m.rows())
                            .map(|r| {
                                Ok(hdc_core::matmul::l2norm_perforated(
                                    &m.row_vector(r)?,
                                    perf,
                                )?)
                            })
                            .collect::<Result<_>>()?;
                        Value::Vector(HyperVector::from_vec(norms))
                    }
                    other => {
                        let v = other.to_dense_vector("l2norm")?;
                        Value::Scalar(hdc_core::matmul::l2norm_perforated(&v, perf)?)
                    }
                })
            }
            HdcOp::GetElement => {
                let row = self.operand_index(instr, 1, "get_element")?;
                let input = self.operand_value(instr, 0, "get_element")?;
                let x = match input {
                    Value::Vector(v) => v.get(row)?,
                    Value::Bits(b) => f64::from(b.get(row)?),
                    Value::Indices(v) => *v.get(row).ok_or(RuntimeError::BadIndex {
                        context: "get_element".to_string(),
                        index: row as i64,
                    })? as f64,
                    Value::Matrix(_) | Value::BitMatrix(_) => {
                        let col = self.operand_index(instr, 2, "get_element")?;
                        match input {
                            Value::Matrix(m) => m.get(row, col)?,
                            Value::BitMatrix(b) => f64::from(b.row(row)?.get(col)?),
                            _ => unreachable!("matched matrix kinds above"),
                        }
                    }
                    Value::Scalar(x) => *x,
                };
                Some(Value::Scalar(x))
            }
            HdcOp::TypeCast { .. } => {
                // The cast itself is the store-side conversion: `set` below
                // conforms to the result slot's declared (cast-to) kind.
                Some(self.operand_value(instr, 0, "type_cast")?.clone())
            }
            HdcOp::ArgMin => Some(self.selection(instr, true)?),
            HdcOp::ArgMax => Some(self.selection(instr, false)?),
            HdcOp::SetMatrixRow => {
                let row = self.operand_index(instr, 2, "set_matrix_row")?;
                let matrix_id = self.operand_value_id(instr, 0, "set_matrix_row")?;
                let dense = self
                    .operand_value(instr, 1, "set_matrix_row")?
                    .to_dense_vector("set_matrix_row")?;
                match self.value_mut(matrix_id)? {
                    Value::BitMatrix(b) => {
                        b.set_row(row, BitVector::from_dense(&dense))?;
                    }
                    Value::Matrix(m) => {
                        m.set_row(row, &dense)?;
                    }
                    other => {
                        return Err(RuntimeError::TypeMismatch {
                            context: "set_matrix_row".to_string(),
                            expected: "matrix",
                            found: other.kind_name(),
                        })
                    }
                }
                None
            }
            HdcOp::GetMatrixRow => {
                let row = self.operand_index(instr, 1, "get_matrix_row")?;
                let input = self.operand_value(instr, 0, "get_matrix_row")?;
                Some(match input {
                    Value::BitMatrix(b) => Value::Bits(b.row(row)?.clone()),
                    Value::Matrix(m) => Value::Vector(m.row_vector(row)?),
                    other => {
                        return Err(RuntimeError::TypeMismatch {
                            context: "get_matrix_row".to_string(),
                            expected: "matrix",
                            found: other.kind_name(),
                        })
                    }
                })
            }
            HdcOp::MatrixTranspose => {
                let m = self
                    .operand_value(instr, 0, "transpose")?
                    .to_dense_matrix("transpose")?;
                Some(Value::Matrix(m.transpose()))
            }
            HdcOp::CosineSimilarity => Some(self.similarity(instr, perf, Metric::Cosine)?),
            HdcOp::HammingDistance => Some(self.similarity(instr, perf, Metric::Hamming)?),
            HdcOp::MatMul => {
                let input = self.operand_value(instr, 0, "matmul")?;
                let proj = self
                    .operand_value(instr, 1, "matmul")?
                    .to_dense_matrix("matmul projection")?;
                Some(match input {
                    Value::Matrix(_) | Value::BitMatrix(_) => {
                        let batch = input.to_dense_matrix("matmul input")?;
                        Value::Matrix(hdc_core::matmul::matmul_batch(&batch, &proj, perf)?)
                    }
                    other => {
                        let v = other.to_dense_vector("matmul input")?;
                        Value::Vector(hdc_core::matmul::matvec(&proj, &v, perf)?)
                    }
                })
            }
            HdcOp::AccumulateRow => {
                let row = self.operand_index(instr, 2, "accumulate_row")?;
                let matrix_id = self.operand_value_id(instr, 0, "accumulate_row")?;
                let add = self
                    .operand_value(instr, 1, "accumulate_row")?
                    .to_dense_vector("accumulate_row")?;
                match self.value_mut(matrix_id)? {
                    // A packed class matrix accumulates in bipolar space:
                    // unpack the row, add, re-binarize by sign.
                    Value::BitMatrix(b) => {
                        let dense: HyperVector<f64> = b.row(row)?.to_dense();
                        let sum = dense.zip_with(&add, |a, x| a + x)?;
                        b.set_row(row, BitVector::from_dense(&sum.sign()))?;
                    }
                    Value::Matrix(m) => {
                        let sum = m.row_vector(row)?.zip_with(&add, |a, x| a + x)?;
                        m.set_row(row, &sum)?;
                    }
                    other => {
                        return Err(RuntimeError::TypeMismatch {
                            context: "accumulate_row".to_string(),
                            expected: "matrix",
                            found: other.kind_name(),
                        })
                    }
                }
                None
            }
        };
        if let (Some(value), Some(result_id)) = (result, instr.result) {
            self.set(result_id, value);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // op helpers
    // ------------------------------------------------------------------

    fn result_type(&self, instr: &HdcInstr) -> Result<ValueType> {
        let id = instr.result.ok_or_else(|| RuntimeError::TypeMismatch {
            context: format!("{}", instr.op),
            expected: "result slot",
            found: "none",
        })?;
        Ok(self.program.value(id).ty)
    }

    fn make_filled(&self, instr: &HdcInstr, fill: f64) -> Result<Value> {
        Ok(match self.result_type(instr)? {
            ValueType::HyperVector { dim, .. } => Value::Vector(HyperVector::splat(dim, fill)),
            ValueType::HyperMatrix { rows, cols, .. } => {
                Value::Matrix(HyperMatrix::from_fn(rows, cols, |_, _| fill))
            }
            ValueType::Scalar(_) => Value::Scalar(fill),
            ValueType::IndexVector { len } => Value::Indices(vec![0; len]),
        })
    }

    fn make_random(&self, instr: &HdcInstr, seed: u64, kind: RandomKind) -> Result<Value> {
        let mut rng = HdcRng::seed_from_u64(seed);
        Ok(match self.result_type(instr)? {
            ValueType::HyperVector { dim, .. } => Value::Vector(match kind {
                RandomKind::Uniform => hdc_core::random::random_hypervector(dim, &mut rng),
                RandomKind::Gaussian => hdc_core::random::gaussian_hypervector(dim, &mut rng),
                RandomKind::Bipolar => hdc_core::random::bipolar_hypervector(dim, &mut rng),
            }),
            ValueType::HyperMatrix { rows, cols, .. } => Value::Matrix(match kind {
                RandomKind::Uniform => hdc_core::random::random_hypermatrix(rows, cols, &mut rng),
                RandomKind::Gaussian => {
                    hdc_core::random::gaussian_hypermatrix(rows, cols, &mut rng)
                }
                RandomKind::Bipolar => hdc_core::random::bipolar_hypermatrix(rows, cols, &mut rng),
            }),
            other => {
                return Err(RuntimeError::TypeMismatch {
                    context: "random creation".to_string(),
                    expected: "tensor result",
                    found: match other {
                        ValueType::Scalar(_) => "scalar",
                        _ => "indices",
                    },
                })
            }
        })
    }

    fn unary_dense(
        &self,
        instr: &HdcInstr,
        context: &str,
        fv: impl Fn(&HyperVector<f64>) -> HyperVector<f64>,
        fm: impl Fn(&HyperMatrix<f64>) -> HyperMatrix<f64>,
    ) -> Result<Value> {
        let input = self.operand_value(instr, 0, context)?;
        Ok(match input {
            Value::Matrix(_) | Value::BitMatrix(_) => {
                Value::Matrix(fm(&input.to_dense_matrix(context)?))
            }
            Value::Scalar(x) => {
                let v = fv(&HyperVector::from_vec(vec![*x]));
                Value::Scalar(v.get(0)?)
            }
            other => Value::Vector(fv(&other.to_dense_vector(context)?)),
        })
    }

    fn elementwise(&mut self, instr: &HdcInstr, op: ElementwiseOp) -> Result<Value> {
        let lhs = self.operand_value(instr, 0, "elementwise")?;
        let rhs = self.operand_value(instr, 1, "elementwise")?;
        let mut bit_kernel = false;
        let result = match (op, lhs, rhs) {
            // Binding (element-wise multiplication) of two packed bipolar
            // values is XOR on the packed words.
            (ElementwiseOp::Mul, Value::Bits(a), Value::Bits(b)) => {
                bit_kernel = true;
                Value::Bits(a.bind(b)?)
            }
            (ElementwiseOp::Mul, Value::BitMatrix(a), Value::BitMatrix(b)) => {
                bit_kernel = true;
                let rows: Vec<BitVector> = a
                    .iter()
                    .zip(b.iter())
                    .map(|(x, y)| x.bind(y))
                    .collect::<hdc_core::Result<_>>()?;
                Value::BitMatrix(BitMatrix::from_rows(rows)?)
            }
            (_, Value::Scalar(a), Value::Scalar(b)) => Value::Scalar(op.apply(*a, *b)),
            (_, Value::Matrix(_) | Value::BitMatrix(_), _) => {
                let a = lhs.to_dense_matrix("elementwise")?;
                let b = rhs.to_dense_matrix("elementwise")?;
                Value::Matrix(hdc_core::ops::elementwise_matrix(op, &a, &b)?)
            }
            _ => {
                let a = lhs.to_dense_vector("elementwise")?;
                let b = rhs.to_dense_vector("elementwise")?;
                Value::Vector(hdc_core::ops::elementwise(op, &a, &b)?)
            }
        };
        if bit_kernel {
            self.stats.bit_kernel_ops += 1;
        }
        Ok(result)
    }

    fn selection(&self, instr: &HdcInstr, minimize: bool) -> Result<Value> {
        let input = self.operand_value(instr, 0, "selection")?;
        let pick = |slice: &[f64]| -> Option<usize> {
            if minimize {
                hdc_core::ops::arg_min(slice)
            } else {
                hdc_core::ops::arg_max(slice)
            }
        };
        Ok(match input {
            Value::Matrix(_) | Value::BitMatrix(_) => {
                let m = input.to_dense_matrix("selection")?;
                let rows: Vec<usize> = m.iter_rows().map(|row| pick(row).unwrap_or(0)).collect();
                Value::Indices(rows)
            }
            other => {
                let v = other.to_dense_vector("selection")?;
                let idx = pick(v.as_slice()).ok_or(RuntimeError::Core(
                    hdc_core::HdcError::EmptyInput("arg_min/arg_max"),
                ))?;
                Value::Scalar(idx as f64)
            }
        })
    }

    fn similarity(&mut self, instr: &HdcInstr, perf: Perforation, metric: Metric) -> Result<Value> {
        let lhs = self.operand_value(instr, 0, "similarity")?;
        let rhs = self.operand_value(instr, 1, "similarity")?;
        let mut bit_kernel = true;
        let result = match (lhs, rhs) {
            // Fast paths: both operands bit-packed.
            (Value::Bits(a), Value::Bits(b)) => {
                let h = a.hamming_distance(b, perf)?;
                Value::Scalar(match metric {
                    Metric::Hamming => h,
                    Metric::Cosine => bipolar_cosine(h, perf.visited_count(a.dimension())),
                })
            }
            (Value::Bits(q), Value::BitMatrix(m)) | (Value::BitMatrix(m), Value::Bits(q)) => {
                let h = m.hamming_distances(q, perf)?;
                Value::Vector(match metric {
                    Metric::Hamming => h,
                    Metric::Cosine => {
                        let v = perf.visited_count(q.dimension());
                        h.map(|d| bipolar_cosine(d, v))
                    }
                })
            }
            (Value::BitMatrix(a), Value::BitMatrix(b)) => {
                let visited = perf.visited_count(a.cols());
                let mut out = HyperMatrix::zeros(a.rows(), b.rows());
                for (i, arow) in a.iter().enumerate() {
                    for (j, brow) in b.iter().enumerate() {
                        let h = arow.hamming_distance(brow, perf)?;
                        let v = match metric {
                            Metric::Hamming => h,
                            Metric::Cosine => bipolar_cosine(h, visited),
                        };
                        out.set(i, j, v)?;
                    }
                }
                Value::Matrix(out)
            }
            // Dense reference path (also covers mixed packed/dense operands;
            // the pure-bit combinations were all consumed above).
            (Value::Matrix(_) | Value::BitMatrix(_), Value::Matrix(_) | Value::BitMatrix(_)) => {
                bit_kernel = false;
                let a = lhs.to_dense_matrix("similarity")?;
                let b = rhs.to_dense_matrix("similarity")?;
                Value::Matrix(match metric {
                    Metric::Cosine => cosine_similarity_all_pairs(&a, &b, perf)?,
                    Metric::Hamming => hamming_distance_all_pairs(&a, &b, perf)?,
                })
            }
            (Value::Matrix(_) | Value::BitMatrix(_), _) => {
                bit_kernel = false;
                let a = lhs.to_dense_matrix("similarity")?;
                let q = rhs.to_dense_vector("similarity")?;
                Value::Vector(match metric {
                    Metric::Cosine => cosine_similarity_matrix(&q, &a, perf)?,
                    Metric::Hamming => hamming_distance_matrix(&q, &a, perf)?,
                })
            }
            (_, Value::Matrix(_) | Value::BitMatrix(_)) => {
                bit_kernel = false;
                let q = lhs.to_dense_vector("similarity")?;
                let b = rhs.to_dense_matrix("similarity")?;
                Value::Vector(match metric {
                    Metric::Cosine => cosine_similarity_matrix(&q, &b, perf)?,
                    Metric::Hamming => hamming_distance_matrix(&q, &b, perf)?,
                })
            }
            _ => {
                bit_kernel = false;
                let a = lhs.to_dense_vector("similarity")?;
                let b = rhs.to_dense_vector("similarity")?;
                Value::Scalar(match metric {
                    Metric::Cosine => cosine_similarity(&a, &b, perf)?,
                    Metric::Hamming => hamming_distance(&a, &b, perf)?,
                })
            }
        };
        if bit_kernel {
            self.stats.bit_kernel_ops += 1;
        }
        Ok(result)
    }
}

#[derive(Debug, Clone, Copy)]
enum RandomKind {
    Uniform,
    Gaussian,
    Bipolar,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Metric {
    Cosine,
    Hamming,
}

/// `matrix[row] += sign * sample`, in place, with bounds checking — the
/// perceptron update of `training_loop`, run once per misprediction.
fn update_row_in_place(
    matrix: &mut HyperMatrix<f64>,
    row: usize,
    sample: &HyperVector<f64>,
    sign: f64,
) -> Result<()> {
    let (rows, cols) = (matrix.rows(), matrix.cols());
    if row >= rows {
        return Err(RuntimeError::Core(hdc_core::HdcError::IndexOutOfBounds {
            index: row,
            len: rows,
        }));
    }
    if sample.dimension() != cols {
        return Err(RuntimeError::Core(hdc_core::HdcError::DimensionMismatch {
            expected: cols,
            actual: sample.dimension(),
            context: "training row update",
        }));
    }
    let slice = &mut matrix.as_mut_slice()[row * cols..(row + 1) * cols];
    for (slot, &x) in slice.iter_mut().zip(sample.as_slice()) {
        *slot += sign * x;
    }
    Ok(())
}

/// Cosine similarity of two bipolar hypervectors from their Hamming distance
/// over `visited` compared positions: `dot = visited - 2h`, both norms are
/// `sqrt(visited)`.
fn bipolar_cosine(hamming: f64, visited: usize) -> f64 {
    if visited == 0 {
        return 0.0;
    }
    (visited as f64 - 2.0 * hamming) / visited as f64
}
