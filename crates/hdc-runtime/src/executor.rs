//! The program executor: a reference interpreter for HPVM-HDC programs with
//! a batched fast path.
//!
//! [`Executor`] walks a verified [`Program`] node by node, evaluating every
//! HDC intrinsic against the `hdc-core` kernels. Values live in a store
//! keyed by [`ValueId`]; slots binarized by the compiler (element kind
//! `Bit`) hold bit-packed payloads, and the executor dispatches the
//! XOR/popcount kernels whenever both operands of a Hamming-distance or
//! cosine-similarity reduction are packed — the same specialization the
//! paper's CPU/GPU back ends perform after automatic binarization.
//! `red_perf` annotations are honored by forwarding the [`Perforation`]
//! descriptor into the kernels.
//!
//! Execution semantics worth calling out:
//!
//! * The interpreter computes in `f64` and conforms results to each slot's
//!   declared element kind on store (packing for `Bit`, round-and-saturate
//!   for integer kinds). This makes it a *reference* semantics: back ends
//!   must match its outputs, not its performance.
//! * Tensor payloads are `Arc`-shared ([`Value`]); moving values between
//!   slots never copies a tensor. Every genuine copy (representation
//!   conversions, per-sample row staging, copy-on-write of a shared
//!   payload) is counted in [`ExecStats::tensor_bytes_copied`].
//! * **Stage batching** (on by default, [`Executor::set_batched_stages`]):
//!   an `inference_loop` whose body is a single similarity reduction
//!   against a loop-invariant class matrix, or an `encoding_loop` whose
//!   body is `matmul` (optionally followed by `sign`), is executed as one
//!   matrix-level kernel call ([`hdc_core::batch`]) over the whole sample
//!   matrix instead of one interpreter pass per sample. The per-sample
//!   loop is kept as the reference oracle; the batched kernels are
//!   bit-identical to it, and equivalence tests hold the two paths
//!   together.
//! * **`ParallelFor`** nodes whose bodies pass a row-independence analysis
//!   (every in-place row write is indexed by the loop variable, no
//!   cross-iteration dataflow) run their instances through the rayon
//!   compat layer: each instance executes against a cheap `Arc` snapshot
//!   of the store with its row writes deferred to a log, and the logs are
//!   merged afterwards. Bodies that fail the analysis fall back to the
//!   sequential schedule, which remains the reference.
//! * `training_loop` implements perceptron-style HDC retraining: on a
//!   misprediction the sample is added to the true class row and subtracted
//!   from the predicted row. A binarized class matrix is unpacked for the
//!   duration of the stage and re-binarized by sign at stage exit. In
//!   batched mode, a recognized training body runs on the **batched-epoch
//!   schedule**: the class matrix is frozen at the top of each epoch, the
//!   whole train matrix is scored in one epoch kernel
//!   ([`hdc_core::batch::score_epoch`], counted in
//!   [`ExecStats::epoch_kernel_ops`]), and the perceptron updates are then
//!   replayed in sample order against the frozen scores — re-scoring (with
//!   the per-sample reference kernel, counted in
//!   [`ExecStats::rescored_samples`]) only samples visited after a class
//!   row changed, so the trained matrix stays bit-identical to the
//!   sequential oracle. The clustering accumulate-by-assignment
//!   `ParallelFor` gets the same frozen-assignment treatment: the
//!   assignment vector is already frozen by the preceding assign stage, so
//!   the whole update collapses into one segmented reduction
//!   ([`hdc_core::batch::accumulate_by_segment`]).

use crate::error::{Result, RuntimeError};
use crate::value::Value;
use hdc_core::element::ElementKind;
use hdc_core::ops::ElementwiseOp;
use hdc_core::similarity::{
    cosine_similarity, cosine_similarity_all_pairs, cosine_similarity_matrix, hamming_distance,
    hamming_distance_all_pairs, hamming_distance_matrix,
};
use hdc_core::{BitMatrix, BitVector, HdcRng, HyperMatrix, HyperVector, Perforation};
use hdc_ir::instr::{HdcInstr, Operand};
use hdc_ir::ops::HdcOp;
use hdc_ir::program::{Node, NodeBody, Program, ValueId, ValueRole};
use hdc_ir::stage::{ScorePolarity, StageKind, StageNode};
use hdc_ir::types::ValueType;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// Execution counters, useful for tests and profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Total instructions evaluated (stage bodies count once per sample,
    /// whether the stage ran per-sample or batched).
    pub instructions_executed: usize,
    /// Total per-sample stage-body executions (batched stages count one per
    /// sample they process).
    pub stage_samples: usize,
    /// Reductions dispatched to the bit-packed XOR/popcount kernels
    /// (batched stages count one per query row, matching the sequential
    /// schedule).
    pub bit_kernel_ops: usize,
    /// Matrix-level batched kernel calls (one per batched stage or
    /// all-pairs bit reduction).
    pub batched_kernel_ops: usize,
    /// Bytes of tensor payload copied: representation conversions
    /// (pack/unpack/quantize), per-sample row staging in the sequential
    /// stage loops, and copy-on-write of shared payloads. The batched
    /// inference path performs none.
    pub tensor_bytes_copied: usize,
    /// Per-sample stage-body executions performed on behalf of a stage node
    /// placed on an HDC accelerator target. The interpreter executes these
    /// samples functionally with the same kernels as CPU-targeted stages
    /// (it is the output oracle); the count is what an accelerator
    /// performance model (see the `hdc-accel` crate) multiplies by its
    /// per-sample modeled cost.
    pub accelerated_stage_samples: usize,
    /// Epoch-level batched kernel calls: one per training epoch scored with
    /// [`hdc_core::batch::score_epoch`] and one per clustering update
    /// collapsed into [`hdc_core::batch::accumulate_by_segment`]. Every
    /// epoch kernel is also counted in
    /// [`batched_kernel_ops`](ExecStats::batched_kernel_ops).
    pub epoch_kernel_ops: usize,
    /// Samples the batched-epoch training schedule re-scored against the
    /// live class matrix because a class row changed after the epoch was
    /// frozen. Zero when every epoch's updates happen after its last sample
    /// (or in sequential mode); `epochs x samples` is the worst case.
    pub rescored_samples: usize,
    /// Class-memory shard blocks launched by sharded batched kernels (the
    /// sum of shard counts over every batched call that ran sharded). Zero
    /// when every call ran unsharded — one thread, a small class memory, or
    /// sequential mode.
    pub class_shards: usize,
    /// Pairwise partial-result merges performed by the reduction trees that
    /// combine per-shard `arg_min` / `arg_max` / top-k selections back into
    /// global winners (`shards - 1` per merged selection row).
    pub shard_merge_ops: usize,
    /// Name of the [`hdc_core::simd`] kernel backend the run dispatched to
    /// (`scalar` / `avx2` / `avx512` / `neon`), stamped at the start of
    /// every run. Empty only on a default-constructed counter set.
    pub kernel_backend: &'static str,
}

impl ExecStats {
    /// Fold another counter set into this one (parallel-loop merge).
    fn absorb(&mut self, other: ExecStats) {
        self.instructions_executed += other.instructions_executed;
        self.stage_samples += other.stage_samples;
        self.bit_kernel_ops += other.bit_kernel_ops;
        self.batched_kernel_ops += other.batched_kernel_ops;
        self.tensor_bytes_copied += other.tensor_bytes_copied;
        self.accelerated_stage_samples += other.accelerated_stage_samples;
        self.epoch_kernel_ops += other.epoch_kernel_ops;
        self.rescored_samples += other.rescored_samples;
        self.class_shards += other.class_shards;
        self.shard_merge_ops += other.shard_merge_ops;
        if self.kernel_backend.is_empty() {
            self.kernel_backend = other.kernel_backend;
        }
    }
}

/// One stage node executed by a run, in execution order: the placement and
/// sample-count record an accelerator back end needs to account modeled
/// per-stage cost against what actually ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTraceEntry {
    /// Name of the stage node.
    pub node: String,
    /// Stage kind name (`encoding_loop` / `training_loop` /
    /// `inference_loop`).
    pub kind: &'static str,
    /// Hardware target the node was assigned to by the compiler.
    pub target: hdc_ir::Target,
    /// Per-sample body executions the stage performed (training loops count
    /// every epoch's pass over every sample).
    pub samples: usize,
    /// Whether the stage ran as one batched matrix-level kernel call.
    pub batched: bool,
}

/// The typed outputs of a program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Outputs {
    values: Vec<(ValueId, String, Value)>,
}

impl Outputs {
    /// The output for `id`, if `id` is an output slot.
    pub fn get(&self, id: ValueId) -> Option<&Value> {
        self.values
            .iter()
            .find(|(v, _, _)| *v == id)
            .map(|(_, _, val)| val)
    }

    /// The output with the given slot name.
    pub fn by_name(&self, name: &str) -> Option<&Value> {
        self.values
            .iter()
            .find(|(_, n, _)| n == name)
            .map(|(_, _, val)| val)
    }

    /// All outputs, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &str, &Value)> {
        self.values.iter().map(|(id, n, v)| (*id, n.as_str(), v))
    }

    /// A scalar output.
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is not an output or not a scalar.
    pub fn scalar(&self, id: ValueId) -> Result<f64> {
        self.require(id)?.as_scalar("output")
    }

    /// An index-vector output.
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is not an output or not an index vector.
    pub fn indices(&self, id: ValueId) -> Result<&[usize]> {
        self.require(id)?.as_indices("output")
    }

    /// A tensor output as a dense `f64` hypervector.
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is not an output or not vector shaped.
    pub fn vector(&self, id: ValueId) -> Result<HyperVector<f64>> {
        self.require(id)?.to_dense_vector("output")
    }

    /// A tensor output as a dense `f64` hypermatrix.
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is not an output or not matrix shaped.
    pub fn matrix(&self, id: ValueId) -> Result<HyperMatrix<f64>> {
        self.require(id)?.to_dense_matrix("output")
    }

    fn require(&self, id: ValueId) -> Result<&Value> {
        self.get(id)
            .ok_or(RuntimeError::MissingOutput { value: id.index() })
    }
}

/// Deferred row writes collected while a `ParallelFor` instance executes
/// against a store snapshot: `(target matrix, row, dense row value)`.
/// Bit-matrix targets log the row as it would be stored (re-binarized by
/// sign), so intra-iteration read-back matches the sequential schedule.
#[derive(Debug)]
struct RowLog {
    targets: Vec<ValueId>,
    writes: Vec<(ValueId, usize, HyperVector<f64>)>,
}

impl RowLog {
    fn latest(&self, target: ValueId, row: usize) -> Option<&HyperVector<f64>> {
        self.writes
            .iter()
            .rev()
            .find(|(t, r, _)| *t == target && *r == row)
            .map(|(_, _, v)| v)
    }
}

/// A stage body the executor recognized as one batched kernel call.
#[derive(Debug, Clone, Copy)]
enum StagePlan {
    /// `inference_loop` body: one similarity reduction of the sample against
    /// a loop-invariant class matrix.
    Inference {
        classes: ValueId,
        metric: Metric,
        perf: Perforation,
    },
    /// `encoding_loop` body: `matmul` against a loop-invariant projection,
    /// optionally followed by `sign`.
    Encoding {
        proj: ValueId,
        perf: Perforation,
        then_sign: bool,
    },
    /// `training_loop` body: one similarity reduction of the sample against
    /// the live class matrix — runs on the batched-epoch schedule.
    Training {
        classes: ValueId,
        epochs: usize,
        metric: Metric,
        perf: Perforation,
    },
}

/// A `ParallelFor` body the executor recognized as one segmented-reduction
/// kernel call: gather a row of `rows` at the loop index, look the
/// accumulator row up in the `assign` index vector, accumulate into `acc`.
#[derive(Debug, Clone, Copy)]
struct SegmentedAccumulatePlan {
    /// Matrix whose rows are gathered per iteration.
    rows: ValueId,
    /// Index vector supplying each iteration's accumulator row.
    assign: ValueId,
    /// The accumulator matrix.
    acc: ValueId,
}

/// The reference interpreter. See the module docs for semantics.
#[derive(Debug)]
pub struct Executor<'p> {
    program: &'p Program,
    store: Vec<Option<Value>>,
    stats: ExecStats,
    batch_stages: bool,
    parallel_loops: bool,
    /// `Some(n)` forces every sharded batched kernel to split the class
    /// memory into `n` row-blocks; `None` picks the count from worker
    /// threads × class-matrix size ([`hdc_core::shard::default_shard_count`]).
    class_shard_override: Option<usize>,
    row_log: Option<RowLog>,
    stage_trace: Vec<StageTraceEntry>,
    /// The bound store as it looked when [`Executor::run`] first started
    /// (payload `Arc` bumps, no tensor copies): every later run restores it
    /// so repeated runs see the same inputs, not state a previous run
    /// mutated in place.
    baseline: Option<Vec<Option<Value>>>,
}

impl<'p> Executor<'p> {
    /// Create an executor for `program`, verifying it first.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidProgram`] if the IR verifier rejects
    /// the program.
    pub fn new(program: &'p Program) -> Result<Self> {
        hdc_ir::verify::verify(program)?;
        Ok(Executor {
            program,
            store: vec![None; program.values().len()],
            stats: ExecStats::default(),
            batch_stages: true,
            parallel_loops: true,
            class_shard_override: None,
            row_log: None,
            stage_trace: Vec::new(),
            baseline: None,
        })
    }

    /// Force the class-memory shard count of every sharded batched kernel
    /// (clamped per call to the class-row count), or restore the automatic
    /// heuristic with `None`. The sharded path is bit-identical to the
    /// unsharded kernels for any count, so this only affects scheduling —
    /// it exists for tests pinning shard/merge accounting and benchmarks
    /// sweeping the class axis.
    pub fn set_class_shards(&mut self, shards: Option<usize>) -> &mut Self {
        self.class_shard_override = shards;
        self
    }

    /// The shard plan for a class memory of `class_rows` rows: the
    /// override if set, else one shard per worker thread with at least
    /// [`hdc_core::shard::MIN_ROWS_PER_SHARD`] rows each.
    fn shard_plan(&self, class_rows: usize) -> hdc_core::ShardPlan {
        let shards = self.class_shard_override.unwrap_or_else(|| {
            hdc_core::default_shard_count(class_rows, rayon::current_num_threads())
        });
        hdc_core::ShardPlan::split(class_rows, shards)
    }

    /// Enable or disable batched execution (default: enabled). Disabling
    /// forces every stage through the per-sample sequential reference
    /// oracle, and the matrix-level instruction fast paths (all-pairs
    /// bit-packed similarity, batched `arg_top_k` selection) through their
    /// dense reference / per-row forms.
    pub fn set_batched_stages(&mut self, enabled: bool) -> &mut Self {
        self.batch_stages = enabled;
        self
    }

    /// Enable or disable parallel `ParallelFor` execution (default:
    /// enabled). Disabling forces the sequential schedule.
    pub fn set_parallel_loops(&mut self, enabled: bool) -> &mut Self {
        self.parallel_loops = enabled;
        self
    }

    /// Bind a host-visible (input or output) slot by name.
    ///
    /// The value is conformed to the slot's declared representation (packed
    /// for binarized slots), after its shape is checked. Output slots are
    /// bindable so hosts can pre-populate in/out buffers (e.g. a matrix a
    /// `parallel_for` writes row by row); temporaries are not.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownBinding`] if no input or output slot
    /// has that name, and [`RuntimeError::ShapeMismatch`] if the shape
    /// disagrees with the declared type.
    pub fn bind(&mut self, name: &str, value: Value) -> Result<&mut Self> {
        let id = self
            .program
            .values()
            .iter()
            .position(|v| v.name == name && matches!(v.role, ValueRole::Input | ValueRole::Output))
            .map(ValueId::new)
            .ok_or_else(|| RuntimeError::UnknownBinding {
                name: name.to_string(),
            })?;
        self.bind_id(id, value)
    }

    /// Bind an input slot by id.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ShapeMismatch`] if the value's shape
    /// disagrees with the slot's declared type.
    pub fn bind_id(&mut self, id: ValueId, value: Value) -> Result<&mut Self> {
        let info = self.program.value(id);
        if !value.shape_matches(&info.ty) {
            return Err(RuntimeError::ShapeMismatch {
                name: info.name.clone(),
                declared: info.ty.to_string(),
                provided: value.describe(),
            });
        }
        self.set(id, value);
        // Rebinding between runs must survive the next run's baseline
        // restore.
        if let Some(baseline) = &mut self.baseline {
            baseline[id.index()] = self.store[id.index()].clone();
        }
        Ok(self)
    }

    /// Execution counters accumulated so far (reset at the start of every
    /// [`run`](Executor::run)).
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// The stage nodes executed so far, in execution order, with their
    /// compiler-assigned target and processed sample count. Accelerator
    /// back ends (the `hdc-accel` crate) consume this trace to charge
    /// modeled per-stage cost against exactly the work that ran.
    pub fn stage_trace(&self) -> &[StageTraceEntry] {
        &self.stage_trace
    }

    /// Execute the program and collect its outputs.
    ///
    /// Repeated runs on one executor are independent: the counters and the
    /// stage trace reset, and the store is restored to the bound inputs as
    /// they were when the first run started (stage loops mutate bound slots
    /// in place), so two identical runs report identical stats and outputs.
    ///
    /// # Errors
    ///
    /// Returns an error if an input was never bound or any instruction
    /// fails to evaluate.
    pub fn run(&mut self) -> Result<Outputs> {
        match &self.baseline {
            // Arc-backed payloads: restoring clones reference counts, not
            // tensors.
            Some(baseline) => self.store = baseline.clone(),
            None => self.baseline = Some(self.store.clone()),
        }
        self.stats = ExecStats {
            kernel_backend: hdc_core::simd::selected().name(),
            ..ExecStats::default()
        };
        self.stage_trace.clear();
        let program = self.program;
        for (i, info) in program.values().iter().enumerate() {
            if info.role == ValueRole::Input && self.store[i].is_none() {
                return Err(RuntimeError::UnboundInput {
                    value: i,
                    name: info.name.clone(),
                });
            }
        }
        for node in program.nodes() {
            self.exec_node(node)?;
        }
        let mut values = Vec::new();
        for id in program.values_with_role(ValueRole::Output) {
            let info = program.value(id);
            // Arc-backed payloads: this clone is a reference-count bump.
            let value = self.value(id)?.clone();
            values.push((id, info.name.clone(), value));
        }
        Ok(Outputs { values })
    }

    /// Fork an independent executor on the same program, carrying over the
    /// current *bound inputs* (`Arc` refcount bumps, no tensor copies) and
    /// scheduling configuration, but none of the run state: the fork gets
    /// fresh counters, a fresh stage trace, and its own store, so two forks
    /// running concurrently — or a fork running while the parent is mid-use
    /// elsewhere — never observe each other's in-place stage mutations.
    ///
    /// This is the executor-sharing contract the serving registry builds
    /// on: bind a model's artifacts once, then fork per request window.
    /// If the parent has already run, the fork starts from the parent's
    /// *baseline* store (the inputs as bound, not the last run's mutated
    /// state), matching what a freshly bound executor would see.
    pub fn fork(&self) -> Executor<'p> {
        let store = match &self.baseline {
            Some(baseline) => baseline.clone(),
            None => self.store.clone(),
        };
        Executor {
            program: self.program,
            store,
            stats: ExecStats::default(),
            batch_stages: self.batch_stages,
            parallel_loops: self.parallel_loops,
            class_shard_override: self.class_shard_override,
            row_log: None,
            stage_trace: Vec::new(),
            baseline: None,
        }
    }

    // ------------------------------------------------------------------
    // store access
    // ------------------------------------------------------------------

    fn value(&self, id: ValueId) -> Result<&Value> {
        self.store[id.index()]
            .as_ref()
            .ok_or_else(|| RuntimeError::UseBeforeDef {
                value: id.index(),
                name: self.program.value(id).name.clone(),
            })
    }

    fn set(&mut self, id: ValueId, value: Value) {
        let declared = &self.program.value(id).ty;
        let (conformed, copied) = value.conform_to_counted(declared);
        self.stats.tensor_bytes_copied += copied;
        self.store[id.index()] = Some(conformed);
    }

    /// Store without conforming (used for the dense shadow of a binarized
    /// class matrix during training).
    fn set_raw(&mut self, id: ValueId, value: Value) {
        self.store[id.index()] = Some(value);
    }

    fn value_mut(&mut self, id: ValueId) -> Result<&mut Value> {
        let program = self.program;
        match self.store[id.index()].as_mut() {
            Some(v) => Ok(v),
            None => Err(RuntimeError::UseBeforeDef {
                value: id.index(),
                name: program.value(id).name.clone(),
            }),
        }
    }

    fn note_copy(&mut self, bytes: usize) {
        self.stats.tensor_bytes_copied += bytes;
    }

    /// Bytes a copy-on-write of `id`'s payload would materialize right now
    /// (`0` when the payload is uniquely owned).
    fn cow_bytes(&self, id: ValueId) -> Result<usize> {
        let v = self.value(id)?;
        Ok(if v.payload_shared() {
            v.tensor_bytes()
        } else {
            0
        })
    }

    fn row_log_covers(&self, id: ValueId) -> bool {
        self.row_log
            .as_ref()
            .is_some_and(|log| log.targets.contains(&id))
    }

    fn operand_value_id(&self, instr: &HdcInstr, idx: usize, context: &str) -> Result<ValueId> {
        instr
            .operands
            .get(idx)
            .and_then(Operand::as_value)
            .ok_or_else(|| RuntimeError::TypeMismatch {
                context: context.to_string(),
                expected: "value operand",
                found: "immediate or missing operand",
            })
    }

    fn operand_value(&self, instr: &HdcInstr, idx: usize, context: &str) -> Result<&Value> {
        match instr.operands.get(idx) {
            Some(Operand::Value(v)) => self.value(*v),
            _ => Err(RuntimeError::TypeMismatch {
                context: context.to_string(),
                expected: "value operand",
                found: "immediate or missing operand",
            }),
        }
    }

    fn operand_index(&self, instr: &HdcInstr, idx: usize, context: &str) -> Result<usize> {
        let raw: i64 = match instr.operands.get(idx) {
            Some(Operand::ImmInt(i)) => *i,
            Some(Operand::Value(v)) => self.value(*v)?.as_scalar(context)?.round() as i64,
            None => {
                return Err(RuntimeError::BadIndex {
                    context: context.to_string(),
                    index: -1,
                })
            }
        };
        usize::try_from(raw).map_err(|_| RuntimeError::BadIndex {
            context: context.to_string(),
            index: raw,
        })
    }

    // ------------------------------------------------------------------
    // node execution
    // ------------------------------------------------------------------

    fn exec_node(&mut self, node: &Node) -> Result<()> {
        match &node.body {
            NodeBody::Leaf { instrs } => self.exec_instrs(instrs),
            NodeBody::ParallelFor { count, index, body } => {
                if self.batch_stages && *count > 0 {
                    if let Some(plan) = self.segmented_accumulate_plan(*count, *index, body) {
                        return self.exec_segmented_accumulate(*count, *index, body, plan);
                    }
                }
                if self.parallel_loops && *count > 1 {
                    if let Some(row_targets) = self.parallel_for_row_plan(*index, body) {
                        return self.exec_parallel_for(*count, *index, body, row_targets);
                    }
                }
                // Sequential reference schedule.
                for i in 0..*count {
                    self.set(*index, Value::Scalar(i as f64));
                    self.exec_instrs(body)?;
                }
                Ok(())
            }
            NodeBody::Stage(stage) => self.exec_stage(node, stage),
        }
    }

    fn exec_instrs(&mut self, instrs: &[HdcInstr]) -> Result<()> {
        for instr in instrs {
            self.exec_instr(instr)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // parallel_for
    // ------------------------------------------------------------------

    /// Reads of an instruction under the row-write analysis: the in-place
    /// target of `set_matrix_row` / `accumulate_row` does not count as a
    /// read (only its row is touched, and only at the loop index).
    fn analysis_reads(instr: &HdcInstr) -> Vec<ValueId> {
        match instr.op {
            HdcOp::SetMatrixRow | HdcOp::AccumulateRow => instr
                .operands
                .iter()
                .skip(1)
                .filter_map(Operand::as_value)
                .collect(),
            _ => instr.read_values().collect(),
        }
    }

    /// Decide whether a `ParallelFor` body is row-independent: every
    /// in-place matrix write is indexed by the loop variable (so iterations
    /// touch disjoint rows), the row-written matrices are never read, and
    /// every value the body both reads and writes is written before it is
    /// read within one iteration (no cross-iteration dataflow). Returns the
    /// row-written matrices when the body qualifies.
    fn parallel_for_row_plan(&self, index: ValueId, body: &[HdcInstr]) -> Option<Vec<ValueId>> {
        let mut row_targets: Vec<ValueId> = Vec::new();
        for instr in body {
            if matches!(instr.op, HdcOp::SetMatrixRow | HdcOp::AccumulateRow) {
                let target = instr.operands.first().and_then(Operand::as_value)?;
                match instr.operands.get(2) {
                    Some(Operand::Value(v)) if *v == index => {}
                    _ => return None,
                }
                if !row_targets.contains(&target) {
                    row_targets.push(target);
                }
            }
        }
        if row_targets.is_empty() {
            // Nothing durable is written per row; only the final iteration's
            // values would survive. The sequential schedule is already
            // optimal for that shape.
            return None;
        }
        let written_anywhere: HashSet<ValueId> = body.iter().filter_map(|i| i.result).collect();
        let mut written_so_far: HashSet<ValueId> = HashSet::new();
        written_so_far.insert(index);
        for instr in body {
            for r in Self::analysis_reads(instr) {
                if row_targets.contains(&r) {
                    return None;
                }
                if written_anywhere.contains(&r) && !written_so_far.contains(&r) {
                    return None;
                }
            }
            if let Some(res) = instr.result {
                if row_targets.contains(&res) {
                    return None;
                }
                written_so_far.insert(res);
            }
        }
        Some(row_targets)
    }

    /// Execute a row-independent `ParallelFor` through the rayon compat
    /// layer: each instance runs against an `Arc` snapshot of the store
    /// (reference-count bumps, no tensor copies) with its row writes
    /// deferred to a log; afterwards the logs are merged in iteration order
    /// and the final iteration's private values are installed, matching the
    /// sequential end state exactly.
    fn exec_parallel_for(
        &mut self,
        count: usize,
        index: ValueId,
        body: &[HdcInstr],
        row_targets: Vec<ValueId>,
    ) -> Result<()> {
        struct IterOutcome {
            writes: Vec<(ValueId, usize, HyperVector<f64>)>,
            private: Vec<(ValueId, Value)>,
            stats: ExecStats,
        }
        let private_slots: Vec<ValueId> = {
            let mut out: Vec<ValueId> = body
                .iter()
                .flat_map(|i| i.written_values())
                .filter(|v| !row_targets.contains(v))
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        };
        let program = self.program;
        let base_store = &self.store;
        let batch_stages = self.batch_stages;
        // Iterations already occupy the worker threads; nested class
        // sharding inside them would only add merge overhead.
        let class_shard_override = Some(1);
        let targets = &row_targets;
        let private = &private_slots;
        let outcomes: Vec<Result<IterOutcome>> = (0..count)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|i| {
                let mut scratch = Executor {
                    program,
                    store: base_store.clone(),
                    stats: ExecStats::default(),
                    batch_stages,
                    parallel_loops: false,
                    class_shard_override,
                    row_log: Some(RowLog {
                        targets: targets.clone(),
                        writes: Vec::new(),
                    }),
                    stage_trace: Vec::new(),
                    baseline: None,
                };
                scratch.set(index, Value::Scalar(i as f64));
                scratch.exec_instrs(body)?;
                let log = scratch.row_log.take().expect("row log installed above");
                let private = private
                    .iter()
                    .filter_map(|id| scratch.store[id.index()].clone().map(|v| (*id, v)))
                    .collect();
                Ok(IterOutcome {
                    writes: log.writes,
                    private,
                    stats: scratch.stats,
                })
            })
            .collect();
        let mut merged = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            merged.push(outcome?);
        }
        let last = merged.len().saturating_sub(1);
        for (i, outcome) in merged.into_iter().enumerate() {
            self.stats.absorb(outcome.stats);
            for (target, row, dense) in outcome.writes {
                self.apply_row_write(target, row, &dense)?;
            }
            if i == last {
                for (id, value) in outcome.private {
                    self.store[id.index()] = Some(value);
                }
            }
        }
        // The sequential schedule leaves the final loop index behind.
        self.set(index, Value::Scalar(count.saturating_sub(1) as f64));
        Ok(())
    }

    /// Merge one deferred row write into the live store.
    fn apply_row_write(
        &mut self,
        target: ValueId,
        row: usize,
        dense: &HyperVector<f64>,
    ) -> Result<()> {
        let cow = self.cow_bytes(target)?;
        self.note_copy(cow);
        match self.value_mut(target)? {
            Value::BitMatrix(b) => Arc::make_mut(b).set_row(row, BitVector::from_dense(dense))?,
            Value::Matrix(m) => Arc::make_mut(m).set_row(row, dense)?,
            other => {
                return Err(RuntimeError::TypeMismatch {
                    context: "parallel_for row merge".to_string(),
                    expected: "matrix",
                    found: other.kind_name(),
                })
            }
        }
        Ok(())
    }

    /// Recognize a `ParallelFor` body as one segmented-reduction kernel
    /// call: the clustering accumulate-by-assignment round, where each
    /// iteration gathers a row of a loop-invariant matrix, looks its
    /// accumulator row up in a **frozen** assignment vector (produced by the
    /// preceding assign stage), and accumulates. The shape is
    /// `get_matrix_row(rows, i)` — optionally cast to a float kind — then
    /// `get_element(assign, i)` and `accumulate_row(acc, row, seg)`.
    ///
    /// Returns `None` (leaving the sequential schedule in charge) when the
    /// body has a different shape, the cast would quantize (the sequential
    /// per-sample conform rounds; the batched kernel would not), any of the
    /// three operands alias, or the runtime representations don't fit the
    /// kernel (`acc` must be a dense matrix, `assign` an index vector).
    fn segmented_accumulate_plan(
        &self,
        count: usize,
        index: ValueId,
        body: &[HdcInstr],
    ) -> Option<SegmentedAccumulatePlan> {
        let (gather, cast, pick, accum) = match body {
            [g, p, a] => (g, None, p, a),
            [g, c, p, a] => (g, Some(c), p, a),
            _ => return None,
        };
        if gather.op != HdcOp::GetMatrixRow
            || gather.operands.get(1).and_then(Operand::as_value) != Some(index)
        {
            return None;
        }
        let rows = gather.operands.first().and_then(Operand::as_value)?;
        let mut row_val = gather.result?;
        if let Some(c) = cast {
            let HdcOp::TypeCast { to } = c.op else {
                return None;
            };
            if !to.is_float() || c.operands.first().and_then(Operand::as_value) != Some(row_val) {
                return None;
            }
            row_val = c.result?;
        }
        if pick.op != HdcOp::GetElement
            || pick.operands.len() != 2
            || pick.operands.get(1).and_then(Operand::as_value) != Some(index)
        {
            return None;
        }
        let assign = pick.operands.first().and_then(Operand::as_value)?;
        let seg_val = pick.result?;
        if accum.op != HdcOp::AccumulateRow
            || accum.operands.get(1).and_then(Operand::as_value) != Some(row_val)
            || accum.operands.get(2).and_then(Operand::as_value) != Some(seg_val)
        {
            return None;
        }
        let acc = accum.operands.first().and_then(Operand::as_value)?;
        if acc == rows || acc == assign || rows == assign {
            return None;
        }
        // Runtime representations: the kernel accumulates dense rows keyed
        // by a frozen index vector, one assignment per gathered row.
        match (
            self.store.get(acc.index())?.as_ref()?,
            self.store.get(rows.index())?.as_ref()?,
            self.store.get(assign.index())?.as_ref()?,
        ) {
            (Value::Matrix(_), Value::Matrix(r), Value::Indices(a))
                if r.rows() == count && a.len() == count => {}
            (Value::Matrix(_), Value::BitMatrix(r), Value::Indices(a))
                if r.rows() == count && a.len() == count => {}
            _ => return None,
        }
        Some(SegmentedAccumulatePlan { rows, assign, acc })
    }

    /// Execute a recognized accumulate-by-assignment `ParallelFor` as one
    /// [`hdc_core::batch::accumulate_by_segment`] kernel call, then restore
    /// the sequential schedule's end state (final loop index and the last
    /// iteration's gather/cast/pick temporaries).
    fn exec_segmented_accumulate(
        &mut self,
        count: usize,
        index: ValueId,
        body: &[HdcInstr],
        plan: SegmentedAccumulatePlan,
    ) -> Result<()> {
        let assignments: Vec<usize> = self
            .value(plan.assign)?
            .as_indices("segment assignments")?
            .to_vec();
        let rows = self.value(plan.rows)?.clone();
        let init = match self.value(plan.acc)? {
            Value::Matrix(m) => Arc::clone(m),
            other => {
                return Err(RuntimeError::TypeMismatch {
                    context: "segmented accumulate".to_string(),
                    expected: "matrix",
                    found: other.kind_name(),
                })
            }
        };
        let out = match &rows {
            // Bit-packed rows accumulate straight from the packed words; no
            // dense intermediate (and no unpack copy) is materialized.
            Value::BitMatrix(b) => {
                hdc_core::batch::accumulate_by_segment_bits(b, &assignments, &init)?
            }
            _ => {
                let (dense, copied) = rows.dense_matrix("segmented accumulate rows")?;
                self.note_copy(copied);
                hdc_core::batch::accumulate_by_segment(dense.as_ref(), &assignments, &init)?
            }
        };
        self.stats.batched_kernel_ops += 1;
        self.stats.epoch_kernel_ops += 1;
        // The accumulate instructions the kernel replaced; the remaining
        // body instructions re-run below and count themselves.
        self.stats.instructions_executed += body.len() * count - (body.len() - 1);
        self.set(plan.acc, Value::matrix(out));
        self.set(index, Value::Scalar((count - 1) as f64));
        for instr in body {
            if instr.op != HdcOp::AccumulateRow {
                self.exec_instr(instr)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // stage execution
    // ------------------------------------------------------------------

    fn exec_stage(&mut self, node: &Node, stage: &StageNode) -> Result<()> {
        let samples_before = self.stats.stage_samples;
        let batched = self.exec_stage_body(stage)?;
        let samples = self.stats.stage_samples - samples_before;
        if node.target.is_hdc_accelerator() {
            self.stats.accelerated_stage_samples += samples;
        }
        self.stage_trace.push(StageTraceEntry {
            node: node.name.clone(),
            kind: stage.kind.name(),
            target: node.target,
            samples,
            batched,
        });
        Ok(())
    }

    /// Execute a stage body, returning whether the batched schedule ran.
    fn exec_stage_body(&mut self, stage: &StageNode) -> Result<bool> {
        if self.batch_stages && self.exec_stage_batched(stage)? {
            return Ok(true);
        }
        // ----- per-sample sequential reference oracle -----
        let (queries, copied) = self
            .value(stage.interface.queries)?
            .dense_matrix("stage queries")?;
        self.note_copy(copied);
        match stage.kind {
            StageKind::Encoding => {
                let mut rows = Vec::with_capacity(queries.rows());
                for r in 0..queries.rows() {
                    let row = queries.row_vector(r)?;
                    self.note_copy(row.dimension() * 8);
                    self.set(stage.body_query, Value::vector(row));
                    self.exec_instrs(&stage.body)?;
                    self.stats.stage_samples += 1;
                    let (v, copied) = self
                        .value(stage.body_result)?
                        .dense_vector("encoding result")?;
                    self.note_copy(copied + v.dimension() * 8);
                    rows.push(v.as_ref().clone());
                }
                self.set(
                    stage.interface.output,
                    Value::matrix(HyperMatrix::from_rows(rows)?),
                );
            }
            StageKind::Inference => {
                let mut labels = Vec::with_capacity(queries.rows());
                for r in 0..queries.rows() {
                    let row = queries.row_vector(r)?;
                    self.note_copy(row.dimension() * 8);
                    self.set(stage.body_query, Value::vector(row));
                    self.exec_instrs(&stage.body)?;
                    self.stats.stage_samples += 1;
                    let (scores, copied) = self
                        .value(stage.body_result)?
                        .dense_vector("stage scores")?;
                    self.note_copy(copied);
                    let winner =
                        stage
                            .polarity
                            .select(scores.as_slice())
                            .ok_or(RuntimeError::Core(hdc_core::HdcError::EmptyInput(
                                "stage scores",
                            )))?;
                    labels.push(winner);
                }
                self.set(stage.interface.output, Value::indices(labels));
            }
            StageKind::Training { epochs } => {
                let classes_id =
                    stage
                        .interface
                        .classes
                        .ok_or_else(|| RuntimeError::TypeMismatch {
                            context: "training_loop".to_string(),
                            expected: "class hypermatrix",
                            found: "none",
                        })?;
                let labels_id =
                    stage
                        .interface
                        .labels
                        .ok_or_else(|| RuntimeError::TypeMismatch {
                            context: "training_loop".to_string(),
                            expected: "labels",
                            found: "none",
                        })?;
                let truth: Vec<usize> = self
                    .value(labels_id)?
                    .as_indices("training labels")?
                    .to_vec();
                // Keep a dense shadow of the class matrix for the duration of
                // the stage so perceptron updates accumulate; re-binarized on
                // exit if the slot is packed.
                let (dense_classes, copied) =
                    self.value(classes_id)?.dense_matrix("training classes")?;
                self.note_copy(copied);
                self.set_raw(classes_id, Value::Matrix(dense_classes));
                for _epoch in 0..epochs {
                    #[allow(clippy::needless_range_loop)]
                    for r in 0..queries.rows() {
                        let sample = queries.row_vector(r)?;
                        self.note_copy(sample.dimension() * 8);
                        self.set(stage.body_query, Value::vector(sample.clone()));
                        self.exec_instrs(&stage.body)?;
                        self.stats.stage_samples += 1;
                        let (scores, copied) = self
                            .value(stage.body_result)?
                            .dense_vector("stage scores")?;
                        self.note_copy(copied);
                        let pred =
                            stage
                                .polarity
                                .select(scores.as_slice())
                                .ok_or(RuntimeError::Core(hdc_core::HdcError::EmptyInput(
                                    "stage scores",
                                )))?;
                        let label = truth[r];
                        if pred != label {
                            let cow = self.cow_bytes(classes_id)?;
                            self.note_copy(cow);
                            match self.value_mut(classes_id)? {
                                Value::Matrix(classes) => {
                                    let m = Arc::make_mut(classes);
                                    update_row_in_place(m, label, &sample, 1.0)?;
                                    update_row_in_place(m, pred, &sample, -1.0)?;
                                }
                                other => {
                                    return Err(RuntimeError::TypeMismatch {
                                        context: "training_loop classes".to_string(),
                                        expected: "matrix",
                                        found: other.kind_name(),
                                    })
                                }
                            }
                        }
                    }
                }
                // Conform the trained matrix back to the declared kind: one
                // conversion, shared with the aliased output slot.
                let trained = self.value(classes_id)?.clone();
                let declared = &self.program.value(classes_id).ty;
                let (conformed, copied) = trained.conform_to_counted(declared);
                self.note_copy(copied);
                self.set_raw(classes_id, conformed.clone());
                if stage.interface.output != classes_id {
                    self.set(stage.interface.output, conformed);
                }
            }
        }
        Ok(false)
    }

    /// Recognize a stage body the batched kernels can execute in one call.
    /// Bodies that stage their intermediate results in integer-quantized
    /// slots are left to the sequential oracle (its per-sample conform
    /// would round; the batched kernels would not).
    fn stage_batch_plan(&self, stage: &StageNode) -> Option<StagePlan> {
        let float_or = |id: ValueId, allow_bit: bool| -> bool {
            match self.program.value(id).ty {
                ValueType::HyperVector { elem, .. } | ValueType::HyperMatrix { elem, .. } => {
                    matches!(elem, ElementKind::F32 | ElementKind::F64)
                        || (allow_bit && elem == ElementKind::Bit)
                }
                _ => false,
            }
        };
        match stage.kind {
            StageKind::Inference => {
                let [instr] = stage.body.as_slice() else {
                    return None;
                };
                let metric = match instr.op {
                    HdcOp::CosineSimilarity => Metric::Cosine,
                    HdcOp::HammingDistance => Metric::Hamming,
                    _ => return None,
                };
                if instr.result != Some(stage.body_result) || !float_or(stage.body_result, false) {
                    return None;
                }
                let a = instr.operands.first().and_then(Operand::as_value)?;
                let b = instr.operands.get(1).and_then(Operand::as_value)?;
                let classes = if a == stage.body_query && b != stage.body_query {
                    b
                } else if b == stage.body_query && a != stage.body_query {
                    a
                } else {
                    return None;
                };
                Some(StagePlan::Inference {
                    classes,
                    metric,
                    perf: instr.perforation.unwrap_or(Perforation::NONE),
                })
            }
            StageKind::Encoding => {
                let (mm, sign) = match stage.body.as_slice() {
                    [mm] => (mm, None),
                    [mm, sign] => (mm, Some(sign)),
                    _ => return None,
                };
                if mm.op != HdcOp::MatMul {
                    return None;
                }
                let input = mm.operands.first().and_then(Operand::as_value)?;
                let proj = mm.operands.get(1).and_then(Operand::as_value)?;
                if input != stage.body_query || proj == stage.body_query {
                    return None;
                }
                let then_sign = match sign {
                    None => {
                        if mm.result != Some(stage.body_result)
                            || !float_or(stage.body_result, false)
                        {
                            return None;
                        }
                        false
                    }
                    Some(s) => {
                        let mid = mm.result?;
                        if s.op != HdcOp::Sign
                            || s.operands.first().and_then(Operand::as_value) != Some(mid)
                            || s.result != Some(stage.body_result)
                            || !float_or(mid, true)
                            || !float_or(stage.body_result, true)
                        {
                            return None;
                        }
                        true
                    }
                };
                Some(StagePlan::Encoding {
                    proj,
                    perf: mm.perforation.unwrap_or(Perforation::NONE),
                    then_sign,
                })
            }
            StageKind::Training { epochs } => {
                let [instr] = stage.body.as_slice() else {
                    return None;
                };
                let metric = match instr.op {
                    HdcOp::CosineSimilarity => Metric::Cosine,
                    HdcOp::HammingDistance => Metric::Hamming,
                    _ => return None,
                };
                if instr.result != Some(stage.body_result) || !float_or(stage.body_result, false) {
                    return None;
                }
                let classes = stage.interface.classes?;
                stage.interface.labels?;
                let a = instr.operands.first().and_then(Operand::as_value)?;
                let b = instr.operands.get(1).and_then(Operand::as_value)?;
                let scored = (a == stage.body_query && b == classes)
                    || (b == stage.body_query && a == classes);
                if !scored || classes == stage.body_query {
                    return None;
                }
                Some(StagePlan::Training {
                    classes,
                    epochs,
                    metric,
                    perf: instr.perforation.unwrap_or(Perforation::NONE),
                })
            }
        }
    }

    /// Per-row winner selection: through per-shard partials and the
    /// reduction-tree merge when the plan is sharded (bit-identical to the
    /// direct selection — global lowest-index tie-break and NaN skipping
    /// are preserved across shard boundaries), directly otherwise.
    fn select_sharded(
        &mut self,
        polarity: ScorePolarity,
        row: &[f64],
        plan: &hdc_core::ShardPlan,
    ) -> Option<usize> {
        if plan.shard_count() <= 1 {
            return polarity.select(row);
        }
        let merged = match polarity {
            ScorePolarity::Similarity => hdc_core::shard::row_arg_max_sharded(row, plan),
            ScorePolarity::Distance => hdc_core::shard::row_arg_min_sharded(row, plan),
        };
        self.stats.shard_merge_ops += merged.merge_ops;
        merged.value
    }

    /// Try to execute a stage as one batched kernel call. Returns `false`
    /// (leaving the store untouched) when the body or the operand
    /// representations don't fit the batched kernels.
    fn exec_stage_batched(&mut self, stage: &StageNode) -> Result<bool> {
        let Some(plan) = self.stage_batch_plan(stage) else {
            return Ok(false);
        };
        match plan {
            StagePlan::Inference {
                classes,
                metric,
                perf,
            } => {
                let queries = self.value(stage.interface.queries)?.clone();
                let classes_val = self.value(classes)?.clone();
                let class_rows = match &classes_val {
                    Value::BitMatrix(c) => c.rows(),
                    Value::Matrix(c) => c.rows(),
                    _ => return Ok(false),
                };
                let plan = self.shard_plan(class_rows);
                let scores: HyperMatrix<f64> = match (&queries, &classes_val) {
                    (Value::BitMatrix(q), Value::BitMatrix(c)) => {
                        let h = hdc_core::batch::hamming_distance_batch_sharded(q, c, perf, &plan)?;
                        self.stats.bit_kernel_ops += q.rows();
                        match metric {
                            Metric::Hamming => h,
                            Metric::Cosine => {
                                let visited = perf.visited_count(q.cols());
                                h.map(|d| bipolar_cosine(d, visited))
                            }
                        }
                    }
                    (Value::Matrix(q), Value::Matrix(c)) => match metric {
                        Metric::Cosine => hdc_core::batch::cosine_similarity_batch_sharded(
                            q.as_ref(),
                            c.as_ref(),
                            perf,
                            &plan,
                        )?,
                        Metric::Hamming => hdc_core::batch::hamming_distance_batch_dense_sharded(
                            q.as_ref(),
                            c.as_ref(),
                            perf,
                            &plan,
                        )?,
                    },
                    // Mixed packed/dense operands: sequential oracle.
                    _ => return Ok(false),
                };
                let rows = scores.rows();
                let labels: Vec<usize> = scores
                    .iter_rows()
                    .map(|row| {
                        self.select_sharded(stage.polarity, row, &plan)
                            .ok_or(RuntimeError::Core(hdc_core::HdcError::EmptyInput(
                                "stage scores",
                            )))
                    })
                    .collect::<Result<_>>()?;
                if plan.shard_count() > 1 {
                    self.stats.class_shards += plan.shard_count();
                }
                self.stats.batched_kernel_ops += 1;
                self.stats.stage_samples += rows;
                self.stats.instructions_executed += rows;
                self.set(stage.interface.output, Value::indices(labels));
                Ok(true)
            }
            StagePlan::Encoding {
                proj,
                perf,
                then_sign,
            } => {
                let queries = self.value(stage.interface.queries)?.clone();
                let proj_val = self.value(proj)?.clone();
                let (Value::Matrix(q), Value::Matrix(p)) = (&queries, &proj_val) else {
                    return Ok(false);
                };
                let mut out = hdc_core::matmul::matmul_batch(q.as_ref(), p.as_ref(), perf)?;
                // Packing a binarized output slot thresholds by sign anyway
                // (`BitVector::from_signs`), so the signed dense copy only
                // needs materializing when the slot stays dense.
                let packs_by_sign = self.program.value(stage.interface.output).ty.element_kind()
                    == Some(ElementKind::Bit);
                if then_sign && !packs_by_sign {
                    out = out.sign();
                }
                self.stats.batched_kernel_ops += 1;
                self.stats.stage_samples += q.rows();
                self.stats.instructions_executed += stage.body.len() * q.rows();
                self.set(stage.interface.output, Value::matrix(out));
                Ok(true)
            }
            StagePlan::Training {
                classes,
                epochs,
                metric,
                perf,
            } => self.exec_training_batched(stage, classes, epochs, metric, perf),
        }
    }

    /// The batched-epoch training schedule. Per epoch: freeze the class
    /// matrix, score the whole train matrix in one
    /// [`hdc_core::batch::score_epoch`] kernel call, then replay the
    /// perceptron updates in sample order against the frozen scores. A
    /// sample visited after any class row changed is re-scored against the
    /// live matrix with the per-sample reference kernel (whose rows the
    /// epoch kernel is bit-identical to), so the trained matrix — and every
    /// prediction along the way — exactly matches the sequential oracle.
    fn exec_training_batched(
        &mut self,
        stage: &StageNode,
        classes_id: ValueId,
        epochs: usize,
        metric: Metric,
        perf: Perforation,
    ) -> Result<bool> {
        let labels_id = stage.interface.labels.expect("checked by the plan");
        let truth: Vec<usize> = self
            .value(labels_id)?
            .as_indices("training labels")?
            .to_vec();
        let (queries, q_copied) = self
            .value(stage.interface.queries)?
            .dense_matrix("stage queries")?;
        // The dense working copy plays the role of the sequential oracle's
        // dense shadow: perceptron updates accumulate in full precision and
        // the result conforms back to the declared kind at stage exit.
        let mut classes_m: HyperMatrix<f64> = self
            .value(classes_id)?
            .to_dense_matrix("training classes")?;
        self.note_copy(q_copied + classes_m.rows() * classes_m.cols() * 8);
        let batch_metric = match metric {
            Metric::Cosine => hdc_core::batch::SimilarityMetric::Cosine,
            Metric::Hamming => hdc_core::batch::SimilarityMetric::Hamming,
        };
        let n = queries.rows();
        let plan = self.shard_plan(classes_m.rows());
        for _epoch in 0..epochs {
            let frozen = hdc_core::batch::score_epoch_sharded(
                queries.as_ref(),
                &classes_m,
                batch_metric,
                perf,
                &plan,
            )?;
            self.stats.epoch_kernel_ops += 1;
            self.stats.batched_kernel_ops += 1;
            if plan.shard_count() > 1 {
                self.stats.class_shards += plan.shard_count();
            }
            let mut stale = false;
            for (r, &label) in truth.iter().enumerate().take(n) {
                let pred = if stale {
                    // Live-matrix rescore: the per-sample reference kernel
                    // and direct selection, exactly the sequential oracle.
                    let sample = queries.row_vector(r)?;
                    self.note_copy(sample.dimension() * 8);
                    let scores = match metric {
                        Metric::Cosine => cosine_similarity_matrix(&sample, &classes_m, perf)?,
                        Metric::Hamming => hamming_distance_matrix(&sample, &classes_m, perf)?,
                    };
                    self.stats.rescored_samples += 1;
                    stage.polarity.select(scores.as_slice())
                } else {
                    self.select_sharded(stage.polarity, frozen.row(r)?, &plan)
                }
                .ok_or(RuntimeError::Core(hdc_core::HdcError::EmptyInput(
                    "stage scores",
                )))?;
                self.stats.stage_samples += 1;
                self.stats.instructions_executed += 1;
                if pred != label {
                    let sample = queries.row_vector(r)?;
                    update_row_in_place(&mut classes_m, label, &sample, 1.0)?;
                    update_row_in_place(&mut classes_m, pred, &sample, -1.0)?;
                    stale = true;
                }
            }
        }
        let declared = self.program.value(classes_id).ty;
        let (conformed, copied) = Value::matrix(classes_m).conform_to_counted(&declared);
        self.note_copy(copied);
        self.set_raw(classes_id, conformed.clone());
        if stage.interface.output != classes_id {
            self.set(stage.interface.output, conformed);
        }
        Ok(true)
    }

    // ------------------------------------------------------------------
    // instruction execution
    // ------------------------------------------------------------------

    fn exec_instr(&mut self, instr: &HdcInstr) -> Result<()> {
        self.stats.instructions_executed += 1;
        let perf = instr.perforation.unwrap_or(Perforation::NONE);
        let result = match &instr.op {
            HdcOp::Zero => Some(self.make_filled(instr, 0.0)?),
            HdcOp::Random { seed } => Some(self.make_random(instr, *seed, RandomKind::Uniform)?),
            HdcOp::Gaussian { seed } => {
                Some(self.make_random(instr, *seed, RandomKind::Gaussian)?)
            }
            HdcOp::RandomBipolar { seed } => {
                Some(self.make_random(instr, *seed, RandomKind::Bipolar)?)
            }
            HdcOp::WrapShift => {
                let amount = match instr.operands.get(1) {
                    Some(Operand::ImmInt(i)) => *i as isize,
                    Some(Operand::Value(v)) => {
                        self.value(*v)?.as_scalar("wrap_shift amount")?.round() as isize
                    }
                    None => 0,
                };
                let input = self.operand_value(instr, 0, "wrap_shift")?;
                Some(match input {
                    Value::Bits(b) => Value::bits(b.wrap_shift(amount)),
                    Value::BitMatrix(b) => {
                        let rows: hdc_core::Result<Vec<BitVector>> =
                            b.iter().map(|r| Ok(r.wrap_shift(amount))).collect();
                        Value::bit_matrix(BitMatrix::from_rows(rows?)?)
                    }
                    Value::Vector(v) => Value::vector(v.wrap_shift(amount)),
                    Value::Matrix(m) => {
                        let rows: Vec<HyperVector<f64>> = (0..m.rows())
                            .map(|r| Ok(m.row_vector(r)?.wrap_shift(amount)))
                            .collect::<Result<_>>()?;
                        Value::matrix(HyperMatrix::from_rows(rows)?)
                    }
                    other => {
                        return Err(RuntimeError::TypeMismatch {
                            context: "wrap_shift".to_string(),
                            expected: "tensor",
                            found: other.kind_name(),
                        })
                    }
                })
            }
            HdcOp::Sign => {
                let input = self.operand_value(instr, 0, "sign")?;
                Some(match input {
                    // Packed values are bipolar by definition; sharing the
                    // payload is free.
                    Value::Bits(b) => Value::Bits(Arc::clone(b)),
                    Value::BitMatrix(b) => Value::BitMatrix(Arc::clone(b)),
                    Value::Vector(v) => Value::vector(v.sign()),
                    Value::Matrix(m) => Value::matrix(m.sign()),
                    Value::Scalar(x) => Value::Scalar(if *x < 0.0 { -1.0 } else { 1.0 }),
                    other => {
                        return Err(RuntimeError::TypeMismatch {
                            context: "sign".to_string(),
                            expected: "tensor or scalar",
                            found: other.kind_name(),
                        })
                    }
                })
            }
            HdcOp::SignFlip => {
                let input = self.operand_value(instr, 0, "sign_flip")?;
                Some(match input {
                    Value::Bits(b) => Value::bits(b.sign_flip()),
                    Value::BitMatrix(b) => {
                        let rows: Vec<BitVector> = b.iter().map(BitVector::sign_flip).collect();
                        Value::bit_matrix(BitMatrix::from_rows(rows)?)
                    }
                    Value::Vector(v) => Value::vector(v.sign_flip()),
                    Value::Matrix(m) => Value::matrix(m.sign_flip()),
                    Value::Scalar(x) => Value::Scalar(-x),
                    other => {
                        return Err(RuntimeError::TypeMismatch {
                            context: "sign_flip".to_string(),
                            expected: "tensor or scalar",
                            found: other.kind_name(),
                        })
                    }
                })
            }
            HdcOp::AbsoluteValue => {
                let (v, copied) =
                    self.unary_dense(instr, "abs", |v| v.absolute_value(), |m| m.absolute_value())?;
                self.note_copy(copied);
                Some(v)
            }
            HdcOp::CosineElementwise => {
                let (v, copied) = self.unary_dense(instr, "cos", |v| v.cosine(), |m| m.cosine())?;
                self.note_copy(copied);
                Some(v)
            }
            HdcOp::Elementwise(op) => Some(self.elementwise(instr, *op)?),
            HdcOp::L2Norm => {
                let input = self.operand_value(instr, 0, "l2norm")?.clone();
                Some(match &input {
                    Value::Matrix(_) | Value::BitMatrix(_) => {
                        let (m, copied) = input.dense_matrix("l2norm")?;
                        self.note_copy(copied);
                        let norms: Vec<f64> = (0..m.rows())
                            .map(|r| {
                                Ok(hdc_core::matmul::l2norm_perforated(
                                    &m.row_vector(r)?,
                                    perf,
                                )?)
                            })
                            .collect::<Result<_>>()?;
                        Value::vector(HyperVector::from_vec(norms))
                    }
                    other => {
                        let (v, copied) = other.dense_vector("l2norm")?;
                        self.note_copy(copied);
                        Value::Scalar(hdc_core::matmul::l2norm_perforated(&v, perf)?)
                    }
                })
            }
            HdcOp::GetElement => {
                let row = self.operand_index(instr, 1, "get_element")?;
                let input = self.operand_value(instr, 0, "get_element")?;
                let x = match input {
                    Value::Vector(v) => v.get(row)?,
                    Value::Bits(b) => f64::from(b.get(row)?),
                    Value::Indices(v) => *v.get(row).ok_or(RuntimeError::BadIndex {
                        context: "get_element".to_string(),
                        index: row as i64,
                    })? as f64,
                    Value::Matrix(_) | Value::BitMatrix(_) => {
                        let col = self.operand_index(instr, 2, "get_element")?;
                        match input {
                            Value::Matrix(m) => m.get(row, col)?,
                            Value::BitMatrix(b) => f64::from(b.row(row)?.get(col)?),
                            _ => unreachable!("matched matrix kinds above"),
                        }
                    }
                    Value::Scalar(x) => *x,
                };
                Some(Value::Scalar(x))
            }
            HdcOp::TypeCast { .. } => {
                // The cast itself is the store-side conversion: `set` below
                // conforms to the result slot's declared (cast-to) kind.
                // Cloning the operand is a reference-count bump.
                Some(self.operand_value(instr, 0, "type_cast")?.clone())
            }
            HdcOp::ArgMin => Some(self.selection(instr, true)?),
            HdcOp::ArgMax => Some(self.selection(instr, false)?),
            HdcOp::ArgTopK { k } => Some(self.top_k_selection(instr, *k)?),
            HdcOp::SetMatrixRow => {
                let row = self.operand_index(instr, 2, "set_matrix_row")?;
                let matrix_id = self.operand_value_id(instr, 0, "set_matrix_row")?;
                let src = self.operand_value(instr, 1, "set_matrix_row")?.clone();
                let (dense, copied) = src.dense_vector("set_matrix_row")?;
                self.note_copy(copied);
                if self.row_log_covers(matrix_id) {
                    let stored = match self.value(matrix_id)? {
                        Value::BitMatrix(_) => dense.sign(),
                        _ => dense.as_ref().clone(),
                    };
                    self.row_log
                        .as_mut()
                        .expect("covered implies installed")
                        .writes
                        .push((matrix_id, row, stored));
                } else {
                    let cow = self.cow_bytes(matrix_id)?;
                    self.note_copy(cow);
                    match self.value_mut(matrix_id)? {
                        Value::BitMatrix(b) => {
                            Arc::make_mut(b).set_row(row, BitVector::from_dense(dense.as_ref()))?;
                        }
                        Value::Matrix(m) => {
                            Arc::make_mut(m).set_row(row, dense.as_ref())?;
                        }
                        other => {
                            return Err(RuntimeError::TypeMismatch {
                                context: "set_matrix_row".to_string(),
                                expected: "matrix",
                                found: other.kind_name(),
                            })
                        }
                    }
                }
                None
            }
            HdcOp::GetMatrixRow => {
                let row = self.operand_index(instr, 1, "get_matrix_row")?;
                let input = self.operand_value(instr, 0, "get_matrix_row")?.clone();
                let (value, copied) = match &input {
                    Value::BitMatrix(b) => {
                        let r = b.row(row)?.clone();
                        let bytes = r.storage_bytes();
                        (Value::bits(r), bytes)
                    }
                    Value::Matrix(m) => {
                        let r = m.row_vector(row)?;
                        let bytes = r.dimension() * 8;
                        (Value::vector(r), bytes)
                    }
                    other => {
                        return Err(RuntimeError::TypeMismatch {
                            context: "get_matrix_row".to_string(),
                            expected: "matrix",
                            found: other.kind_name(),
                        })
                    }
                };
                self.note_copy(copied);
                Some(value)
            }
            HdcOp::MatrixTranspose => {
                let input = self.operand_value(instr, 0, "transpose")?.clone();
                let (m, copied) = input.dense_matrix("transpose")?;
                self.note_copy(copied);
                Some(Value::matrix(m.transpose()))
            }
            HdcOp::CosineSimilarity => Some(self.similarity(instr, perf, Metric::Cosine)?),
            HdcOp::HammingDistance => Some(self.similarity(instr, perf, Metric::Hamming)?),
            HdcOp::MatMul => {
                let input = self.operand_value(instr, 0, "matmul")?.clone();
                let proj_src = self.operand_value(instr, 1, "matmul")?.clone();
                let (proj, copied) = proj_src.dense_matrix("matmul projection")?;
                self.note_copy(copied);
                Some(match &input {
                    Value::Matrix(_) | Value::BitMatrix(_) => {
                        let (batch, copied) = input.dense_matrix("matmul input")?;
                        self.note_copy(copied);
                        Value::matrix(hdc_core::matmul::matmul_batch(&batch, &proj, perf)?)
                    }
                    other => {
                        let (v, copied) = other.dense_vector("matmul input")?;
                        self.note_copy(copied);
                        Value::vector(hdc_core::matmul::matvec(&proj, &v, perf)?)
                    }
                })
            }
            HdcOp::AccumulateRow => {
                let row = self.operand_index(instr, 2, "accumulate_row")?;
                let matrix_id = self.operand_value_id(instr, 0, "accumulate_row")?;
                let src = self.operand_value(instr, 1, "accumulate_row")?.clone();
                let (add, copied) = src.dense_vector("accumulate_row")?;
                self.note_copy(copied);
                if self.row_log_covers(matrix_id) {
                    let is_bit = matches!(self.value(matrix_id)?, Value::BitMatrix(_));
                    let log = self.row_log.as_ref().expect("covered implies installed");
                    let current: HyperVector<f64> = match log.latest(matrix_id, row) {
                        Some(prev) => prev.clone(),
                        None => match self.value(matrix_id)? {
                            Value::BitMatrix(b) => b.row(row)?.to_dense(),
                            Value::Matrix(m) => m.row_vector(row)?,
                            other => {
                                return Err(RuntimeError::TypeMismatch {
                                    context: "accumulate_row".to_string(),
                                    expected: "matrix",
                                    found: other.kind_name(),
                                })
                            }
                        },
                    };
                    let sum = current.zip_with(add.as_ref(), |a, x| a + x)?;
                    let stored = if is_bit { sum.sign() } else { sum };
                    self.row_log
                        .as_mut()
                        .expect("covered implies installed")
                        .writes
                        .push((matrix_id, row, stored));
                } else {
                    let cow = self.cow_bytes(matrix_id)?;
                    self.note_copy(cow);
                    match self.value_mut(matrix_id)? {
                        // A packed class matrix accumulates in bipolar space:
                        // unpack the row, add, re-binarize by sign.
                        Value::BitMatrix(b) => {
                            let bm = Arc::make_mut(b);
                            let dense: HyperVector<f64> = bm.row(row)?.to_dense();
                            let sum = dense.zip_with(add.as_ref(), |a, x| a + x)?;
                            bm.set_row(row, BitVector::from_dense(&sum.sign()))?;
                        }
                        Value::Matrix(m) => {
                            let mm = Arc::make_mut(m);
                            let sum = mm.row_vector(row)?.zip_with(add.as_ref(), |a, x| a + x)?;
                            mm.set_row(row, &sum)?;
                        }
                        other => {
                            return Err(RuntimeError::TypeMismatch {
                                context: "accumulate_row".to_string(),
                                expected: "matrix",
                                found: other.kind_name(),
                            })
                        }
                    }
                }
                None
            }
        };
        if let (Some(value), Some(result_id)) = (result, instr.result) {
            self.set(result_id, value);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // op helpers
    // ------------------------------------------------------------------

    fn result_type(&self, instr: &HdcInstr) -> Result<ValueType> {
        let id = instr.result.ok_or_else(|| RuntimeError::TypeMismatch {
            context: format!("{}", instr.op),
            expected: "result slot",
            found: "none",
        })?;
        Ok(self.program.value(id).ty)
    }

    fn make_filled(&self, instr: &HdcInstr, fill: f64) -> Result<Value> {
        Ok(match self.result_type(instr)? {
            ValueType::HyperVector { dim, .. } => Value::vector(HyperVector::splat(dim, fill)),
            ValueType::HyperMatrix { rows, cols, .. } => {
                Value::matrix(HyperMatrix::from_fn(rows, cols, |_, _| fill))
            }
            ValueType::Scalar(_) => Value::Scalar(fill),
            ValueType::IndexVector { len } => Value::indices(vec![0; len]),
        })
    }

    fn make_random(&self, instr: &HdcInstr, seed: u64, kind: RandomKind) -> Result<Value> {
        let mut rng = HdcRng::seed_from_u64(seed);
        Ok(match self.result_type(instr)? {
            ValueType::HyperVector { dim, .. } => Value::vector(match kind {
                RandomKind::Uniform => hdc_core::random::random_hypervector(dim, &mut rng),
                RandomKind::Gaussian => hdc_core::random::gaussian_hypervector(dim, &mut rng),
                RandomKind::Bipolar => hdc_core::random::bipolar_hypervector(dim, &mut rng),
            }),
            ValueType::HyperMatrix { rows, cols, .. } => Value::matrix(match kind {
                RandomKind::Uniform => hdc_core::random::random_hypermatrix(rows, cols, &mut rng),
                RandomKind::Gaussian => {
                    hdc_core::random::gaussian_hypermatrix(rows, cols, &mut rng)
                }
                RandomKind::Bipolar => hdc_core::random::bipolar_hypermatrix(rows, cols, &mut rng),
            }),
            other => {
                return Err(RuntimeError::TypeMismatch {
                    context: "random creation".to_string(),
                    expected: "tensor result",
                    found: match other {
                        ValueType::Scalar(_) => "scalar",
                        _ => "indices",
                    },
                })
            }
        })
    }

    fn unary_dense(
        &self,
        instr: &HdcInstr,
        context: &str,
        fv: impl Fn(&HyperVector<f64>) -> HyperVector<f64>,
        fm: impl Fn(&HyperMatrix<f64>) -> HyperMatrix<f64>,
    ) -> Result<(Value, usize)> {
        let input = self.operand_value(instr, 0, context)?;
        Ok(match input {
            Value::Matrix(_) | Value::BitMatrix(_) => {
                let (m, copied) = input.dense_matrix(context)?;
                (Value::matrix(fm(&m)), copied)
            }
            Value::Scalar(x) => {
                let v = fv(&HyperVector::from_vec(vec![*x]));
                (Value::Scalar(v.get(0)?), 0)
            }
            other => {
                let (v, copied) = other.dense_vector(context)?;
                (Value::vector(fv(&v)), copied)
            }
        })
    }

    fn elementwise(&mut self, instr: &HdcInstr, op: ElementwiseOp) -> Result<Value> {
        let lhs = self.operand_value(instr, 0, "elementwise")?.clone();
        let rhs = self.operand_value(instr, 1, "elementwise")?.clone();
        Ok(match (op, &lhs, &rhs) {
            // Binding (element-wise multiplication) of two packed bipolar
            // values is XOR on the packed words.
            (ElementwiseOp::Mul, Value::Bits(a), Value::Bits(b)) => {
                self.stats.bit_kernel_ops += 1;
                Value::bits(a.bind(b)?)
            }
            (ElementwiseOp::Mul, Value::BitMatrix(a), Value::BitMatrix(b)) => {
                self.stats.bit_kernel_ops += 1;
                let rows: Vec<BitVector> = a
                    .iter()
                    .zip(b.iter())
                    .map(|(x, y)| x.bind(y))
                    .collect::<hdc_core::Result<_>>()?;
                Value::bit_matrix(BitMatrix::from_rows(rows)?)
            }
            (_, Value::Scalar(a), Value::Scalar(b)) => Value::Scalar(op.apply(*a, *b)),
            (_, Value::Matrix(_) | Value::BitMatrix(_), _) => {
                let (a, ca) = lhs.dense_matrix("elementwise")?;
                let (b, cb) = rhs.dense_matrix("elementwise")?;
                self.note_copy(ca + cb);
                Value::matrix(hdc_core::ops::elementwise_matrix(op, &a, &b)?)
            }
            _ => {
                let (a, ca) = lhs.dense_vector("elementwise")?;
                let (b, cb) = rhs.dense_vector("elementwise")?;
                self.note_copy(ca + cb);
                Value::vector(hdc_core::ops::elementwise(op, &a, &b)?)
            }
        })
    }

    fn selection(&mut self, instr: &HdcInstr, minimize: bool) -> Result<Value> {
        let input = self.operand_value(instr, 0, "selection")?.clone();
        let pick = |slice: &[f64]| -> Option<usize> {
            if minimize {
                hdc_core::ops::arg_min(slice)
            } else {
                hdc_core::ops::arg_max(slice)
            }
        };
        Ok(match &input {
            Value::Matrix(_) | Value::BitMatrix(_) => {
                let (m, copied) = input.dense_matrix("selection")?;
                self.note_copy(copied);
                let rows: Vec<usize> = m.iter_rows().map(|row| pick(row).unwrap_or(0)).collect();
                Value::indices(rows)
            }
            other => {
                let (v, copied) = other.dense_vector("selection")?;
                self.note_copy(copied);
                let idx = pick(v.as_slice()).ok_or(RuntimeError::Core(
                    hdc_core::HdcError::EmptyInput("arg_min/arg_max"),
                ))?;
                Value::Scalar(idx as f64)
            }
        })
    }

    /// `arg_top_k`: per-row top-k over a score matrix runs as one batched
    /// selection kernel (or a per-row reference loop in sequential mode);
    /// a score vector selects directly. Either way the result must hold
    /// exactly `k` indices per row — NaN scores would shorten the selection
    /// and silently break the declared `indices<k>` layout, so they are an
    /// error.
    fn top_k_selection(&mut self, instr: &HdcInstr, k: usize) -> Result<Value> {
        let input = self.operand_value(instr, 0, "arg_top_k")?.clone();
        Ok(match &input {
            Value::Matrix(_) | Value::BitMatrix(_) => {
                let (m, copied) = input.dense_matrix("arg_top_k")?;
                self.note_copy(copied);
                if self.batch_stages {
                    // The candidate axis (score columns) is the class
                    // memory here; shard it like the scoring kernels and
                    // merge per-shard top-k lists through the tree.
                    let plan = self.shard_plan(m.cols());
                    let (flat, merge_ops) =
                        hdc_core::batch::arg_top_k_batch_sharded(m.as_ref(), k, &plan)?;
                    self.stats.batched_kernel_ops += 1;
                    self.stats.shard_merge_ops += merge_ops;
                    if plan.shard_count() > 1 {
                        self.stats.class_shards += plan.shard_count();
                    }
                    Value::indices(flat)
                } else {
                    // Sequential reference: one per-row selection at a time.
                    let mut flat = Vec::with_capacity(m.rows() * k);
                    for row in m.iter_rows() {
                        flat.extend(checked_top_k(row, k)?);
                    }
                    Value::indices(flat)
                }
            }
            other => {
                let (v, copied) = other.dense_vector("arg_top_k")?;
                self.note_copy(copied);
                Value::indices(checked_top_k(v.as_slice(), k)?)
            }
        })
    }

    fn similarity(&mut self, instr: &HdcInstr, perf: Perforation, metric: Metric) -> Result<Value> {
        let lhs = self.operand_value(instr, 0, "similarity")?.clone();
        let rhs = self.operand_value(instr, 1, "similarity")?.clone();
        Ok(match (&lhs, &rhs) {
            // Fast paths: both operands bit-packed.
            (Value::Bits(a), Value::Bits(b)) => {
                self.stats.bit_kernel_ops += 1;
                let h = a.hamming_distance(b, perf)?;
                Value::Scalar(match metric {
                    Metric::Hamming => h,
                    Metric::Cosine => bipolar_cosine(h, perf.visited_count(a.dimension())),
                })
            }
            (Value::Bits(q), Value::BitMatrix(m)) | (Value::BitMatrix(m), Value::Bits(q)) => {
                self.stats.bit_kernel_ops += 1;
                let h = m.hamming_distances(q, perf)?;
                Value::vector(match metric {
                    Metric::Hamming => h,
                    Metric::Cosine => {
                        let v = perf.visited_count(q.dimension());
                        h.map(|d| bipolar_cosine(d, v))
                    }
                })
            }
            // All-pairs bit reduction: one batched XOR/popcount kernel. In
            // sequential mode this falls through to the dense reference
            // path below, so the oracle stays genuinely per-element (the
            // two produce identical score *orderings*: bipolar rows all
            // share the same norm, so dense cosine is a positive rescaling
            // of the popcount form).
            (Value::BitMatrix(a), Value::BitMatrix(b)) if self.batch_stages => {
                self.stats.bit_kernel_ops += 1;
                self.stats.batched_kernel_ops += 1;
                let plan = self.shard_plan(b.rows());
                if plan.shard_count() > 1 {
                    self.stats.class_shards += plan.shard_count();
                }
                let h = hdc_core::batch::hamming_distance_batch_sharded(a, b, perf, &plan)?;
                Value::matrix(match metric {
                    Metric::Hamming => h,
                    Metric::Cosine => {
                        let visited = perf.visited_count(a.cols());
                        h.map(|d| bipolar_cosine(d, visited))
                    }
                })
            }
            // Dense reference path (also covers mixed packed/dense operands
            // and sequential-mode bit-matrix pairs; the remaining pure-bit
            // combinations were all consumed above).
            (Value::Matrix(_) | Value::BitMatrix(_), Value::Matrix(_) | Value::BitMatrix(_)) => {
                let (a, ca) = lhs.dense_matrix("similarity")?;
                let (b, cb) = rhs.dense_matrix("similarity")?;
                self.note_copy(ca + cb);
                Value::matrix(match metric {
                    Metric::Cosine => cosine_similarity_all_pairs(&a, &b, perf)?,
                    Metric::Hamming => hamming_distance_all_pairs(&a, &b, perf)?,
                })
            }
            (Value::Matrix(_) | Value::BitMatrix(_), _) => {
                let (a, ca) = lhs.dense_matrix("similarity")?;
                let (q, cq) = rhs.dense_vector("similarity")?;
                self.note_copy(ca + cq);
                Value::vector(match metric {
                    Metric::Cosine => cosine_similarity_matrix(&q, &a, perf)?,
                    Metric::Hamming => hamming_distance_matrix(&q, &a, perf)?,
                })
            }
            (_, Value::Matrix(_) | Value::BitMatrix(_)) => {
                let (q, cq) = lhs.dense_vector("similarity")?;
                let (b, cb) = rhs.dense_matrix("similarity")?;
                self.note_copy(cq + cb);
                Value::vector(match metric {
                    Metric::Cosine => cosine_similarity_matrix(&q, &b, perf)?,
                    Metric::Hamming => hamming_distance_matrix(&q, &b, perf)?,
                })
            }
            _ => {
                let (a, ca) = lhs.dense_vector("similarity")?;
                let (b, cb) = rhs.dense_vector("similarity")?;
                self.note_copy(ca + cb);
                Value::Scalar(match metric {
                    Metric::Cosine => cosine_similarity(&a, &b, perf)?,
                    Metric::Hamming => hamming_distance(&a, &b, perf)?,
                })
            }
        })
    }
}

#[derive(Debug, Clone, Copy)]
enum RandomKind {
    Uniform,
    Gaussian,
    Bipolar,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Metric {
    Cosine,
    Hamming,
}

/// `matrix[row] += sign * sample`, in place, with bounds checking — the
/// perceptron update of `training_loop`, run once per misprediction.
///
/// Public so out-of-crate trainers (the online-adaptation path in
/// `hdc-serve`) apply the *same* update kernel the offline executor uses:
/// bit-identity between an online replay and the offline training schedule
/// hinges on the two paths sharing this accumulation, not re-implementing
/// it.
///
/// # Errors
///
/// Returns an index error if `row` is out of bounds, or a
/// dimension-mismatch error if the sample length differs from the matrix
/// column count.
pub fn update_row_in_place(
    matrix: &mut HyperMatrix<f64>,
    row: usize,
    sample: &HyperVector<f64>,
    sign: f64,
) -> Result<()> {
    let (rows, cols) = (matrix.rows(), matrix.cols());
    if row >= rows {
        return Err(RuntimeError::Core(hdc_core::HdcError::IndexOutOfBounds {
            index: row,
            len: rows,
        }));
    }
    if sample.dimension() != cols {
        return Err(RuntimeError::Core(hdc_core::HdcError::DimensionMismatch {
            expected: cols,
            actual: sample.dimension(),
            context: "training row update",
        }));
    }
    let slice = &mut matrix.as_mut_slice()[row * cols..(row + 1) * cols];
    for (slot, &x) in slice.iter_mut().zip(sample.as_slice()) {
        *slot += sign * x;
    }
    Ok(())
}

/// [`hdc_core::ops::arg_top_k`] with the same result contract as the
/// batched kernel: exactly `k` indices or an error. Fewer than `k`
/// comparable scores (NaN contamination, or `k` out of range) would break
/// the `indices<k>` layout the verifier promised downstream consumers.
fn checked_top_k(scores: &[f64], k: usize) -> Result<Vec<usize>> {
    if k == 0 || k > scores.len() {
        return Err(RuntimeError::Core(hdc_core::HdcError::IndexOutOfBounds {
            index: k,
            len: scores.len(),
        }));
    }
    let picked = hdc_core::ops::arg_top_k(scores, k);
    if picked.len() < k {
        return Err(RuntimeError::Core(hdc_core::HdcError::IndexOutOfBounds {
            index: k,
            len: picked.len(),
        }));
    }
    Ok(picked)
}

/// Cosine similarity of two bipolar hypervectors from their Hamming distance
/// over `visited` compared positions: `dot = visited - 2h`, both norms are
/// `sqrt(visited)`.
fn bipolar_cosine(hamming: f64, visited: usize) -> f64 {
    if visited == 0 {
        return 0.0;
    }
    (visited as f64 - 2.0 * hamming) / visited as f64
}
