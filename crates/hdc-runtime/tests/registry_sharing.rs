//! Executor-sharing regression battery: two executors built over the same
//! `Arc`-shared artifacts (the serving-registry pattern — one bound model,
//! many request executors) must never observe each other's run state.
//!
//! This extends the run-reset fix (repeated `run()`s on one executor are
//! independent) across executors: [`Executor::fork`] hands out
//! refcount-bump copies of the bound store, and the COW `Value` payloads
//! guarantee a fork's in-place stage mutations (training loops update the
//! class matrix in place) stay invisible to the parent and to sibling
//! forks — even when the forks run concurrently on worker threads.

use hdc_core::element::ElementKind;
use hdc_core::prelude::*;
use hdc_ir::builder::ProgramBuilder;
use hdc_ir::program::{Program, ValueId};
use hdc_ir::stage::ScorePolarity;
use hdc_runtime::{Executor, Value};

const DIM: usize = 128;
const CLASSES: usize = 5;
const SAMPLES: usize = 20;

/// A training + inference program: the training loop mutates the bound
/// class matrix *in place* (the exact run-state hazard), then inference
/// scores the queries against the trained classes.
fn build_train_infer() -> (Program, ValueId) {
    let mut b = ProgramBuilder::new("registry_sharing");
    let train = b.input_matrix("train", ElementKind::F64, SAMPLES, DIM);
    let labels = b.input_indices("labels", SAMPLES);
    let classes = b.input_matrix("classes", ElementKind::F64, CLASSES, DIM);
    let queries = b.input_matrix("queries", ElementKind::F64, SAMPLES, DIM);
    b.training_loop(
        "train",
        train,
        labels,
        classes,
        2,
        ScorePolarity::Similarity,
        |b, s| b.cossim(s, classes),
    );
    let preds = b.inference_loop(
        "infer",
        queries,
        classes,
        ScorePolarity::Similarity,
        |b, s| b.cossim(s, classes),
    );
    b.mark_output(preds);
    b.mark_output(classes);
    (b.finish(), preds)
}

/// The shared artifacts, `Arc`-backed exactly as a registry would hold
/// them: binding them to an executor is a refcount bump.
fn artifacts(seed: u64) -> (Value, Value, Value, Value) {
    let mut rng = HdcRng::seed_from_u64(seed);
    let train: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(SAMPLES, DIM, &mut rng);
    let queries: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(SAMPLES, DIM, &mut rng);
    let classes = HyperMatrix::from_flat(CLASSES, DIM, vec![0.0; CLASSES * DIM]).unwrap();
    let labels: Vec<usize> = (0..SAMPLES).map(|i| i % CLASSES).collect();
    (
        Value::matrix(train),
        Value::indices(labels),
        Value::matrix(classes),
        Value::matrix(queries),
    )
}

fn bind_all(exec: &mut Executor<'_>, arts: &(Value, Value, Value, Value)) {
    exec.bind("train", arts.0.clone()).unwrap();
    exec.bind("labels", arts.1.clone()).unwrap();
    exec.bind("classes", arts.2.clone()).unwrap();
    exec.bind("queries", arts.3.clone()).unwrap();
}

#[test]
fn fork_does_not_observe_parent_run_state() {
    let (program, preds) = build_train_infer();
    let arts = artifacts(0x5A);
    let mut parent = Executor::new(&program).unwrap();
    bind_all(&mut parent, &arts);
    // Fork BEFORE the parent runs: carries the bound inputs.
    let mut pre_fork = parent.fork();
    let parent_out = parent.run().unwrap();
    // Fork AFTER the parent ran: must start from the bound inputs, not
    // the class matrix the parent's training loop mutated in place.
    let mut post_fork = parent.fork();
    let pre_out = pre_fork.run().unwrap();
    let post_out = post_fork.run().unwrap();
    assert_eq!(
        parent_out.indices(preds).unwrap(),
        pre_out.indices(preds).unwrap()
    );
    assert_eq!(
        parent_out.indices(preds).unwrap(),
        post_out.indices(preds).unwrap()
    );
    assert_eq!(parent_out, pre_out, "pre-run fork diverged");
    assert_eq!(
        parent_out, post_out,
        "post-run fork observed parent run state"
    );
    // And the parent re-runs unchanged (the original run-reset contract).
    assert_eq!(parent.run().unwrap(), parent_out);
}

#[test]
fn sibling_forks_are_isolated_and_concurrent_runs_identical() {
    let (program, _) = build_train_infer();
    let arts = artifacts(0x5B);
    let mut root = Executor::new(&program).unwrap();
    bind_all(&mut root, &arts);
    let reference = root.run().unwrap();
    let outputs: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let mut fork = root.fork();
                scope.spawn(move || {
                    let out = fork.run().unwrap();
                    (out, fork.stats())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, (out, stats)) in outputs.iter().enumerate() {
        assert_eq!(out, &reference, "fork {i} diverged from the root run");
        assert_eq!(
            stats.instructions_executed,
            root.stats().instructions_executed,
            "fork {i} counted different work"
        );
    }
    // The shared artifacts themselves are untouched: a fresh executor
    // bound from the same Arcs still reproduces the reference.
    let mut fresh = Executor::new(&program).unwrap();
    bind_all(&mut fresh, &arts);
    assert_eq!(fresh.run().unwrap(), reference);
}

#[test]
fn fork_rebind_does_not_leak_into_parent_or_siblings() {
    let (program, preds) = build_train_infer();
    let arts = artifacts(0x5C);
    let mut root = Executor::new(&program).unwrap();
    bind_all(&mut root, &arts);
    let reference = root.run().unwrap();
    // A fork rebinds its query matrix (a different request); the parent
    // and a sibling forked afterwards must be unaffected.
    let mut rebound = root.fork();
    let mut rng = HdcRng::seed_from_u64(0x5D);
    let other: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(SAMPLES, DIM, &mut rng);
    rebound.bind("queries", Value::matrix(other)).unwrap();
    let rebound_out = rebound.run().unwrap();
    assert_ne!(
        rebound_out.indices(preds).unwrap(),
        reference.indices(preds).unwrap(),
        "rebound fork should score different queries (sanity)"
    );
    let mut sibling = root.fork();
    assert_eq!(sibling.run().unwrap(), reference, "sibling saw the rebind");
    assert_eq!(root.run().unwrap(), reference, "parent saw the rebind");
}

#[test]
fn fork_inherits_scheduling_configuration() {
    let (program, _) = build_train_infer();
    let arts = artifacts(0x5E);
    let mut root = Executor::new(&program).unwrap();
    root.set_batched_stages(false)
        .set_parallel_loops(false)
        .set_class_shards(Some(2));
    bind_all(&mut root, &arts);
    let reference = root.run().unwrap();
    let mut fork = root.fork();
    let fork_out = fork.run().unwrap();
    assert_eq!(fork_out, reference);
    // Sequential mode performs zero batched kernel calls; the fork must
    // have inherited that configuration rather than the defaults.
    assert_eq!(fork.stats().batched_kernel_ops, 0);
    assert_eq!(
        fork.stats().instructions_executed,
        root.stats().instructions_executed
    );
}
