//! Equivalence property tests: the batched stage execution path and the
//! parallel `ParallelFor` schedule must produce outputs identical to the
//! per-sample sequential reference oracle, across dense/binarized ×
//! perforated/unperforated configurations — and the batched binarized
//! inference path must perform **zero** tensor copies.

use hdc_core::element::ElementKind;
use hdc_core::prelude::*;
use hdc_ir::builder::ProgramBuilder;
use hdc_ir::program::{Program, ValueId};
use hdc_ir::stage::ScorePolarity;
use hdc_runtime::{ExecStats, Executor, Value};

const DIM: usize = 192;
const CLASSES: usize = 7;
const QUERIES: usize = 23;

#[derive(Clone, Copy, Debug)]
enum Metric {
    Hamming,
    Cosine,
}

/// `(begin, end, stride)` red_perf annotations exercised by every case:
/// dense, strided (half the elements), and a segment that straddles a
/// 64-bit word boundary.
fn perforations() -> Vec<Option<(usize, usize, usize)>> {
    vec![None, Some((0, DIM, 2)), Some((30, 150, 1))]
}

fn build_inference(
    binarized: bool,
    metric: Metric,
    perf: Option<(usize, usize, usize)>,
) -> (Program, ValueId) {
    let elem = if binarized {
        ElementKind::Bit
    } else {
        ElementKind::F64
    };
    let mut b = ProgramBuilder::new("equiv_infer");
    let q = b.input_matrix("queries", elem, QUERIES, DIM);
    let c = b.input_matrix("classes", elem, CLASSES, DIM);
    let polarity = match metric {
        Metric::Hamming => ScorePolarity::Distance,
        Metric::Cosine => ScorePolarity::Similarity,
    };
    let preds = b.inference_loop("infer", q, c, polarity, |b, s| {
        let d = match metric {
            Metric::Hamming => b.hamming_distance(s, c),
            Metric::Cosine => b.cossim(s, c),
        };
        if let Some((begin, end, stride)) = perf {
            b.red_perf(d, begin, end, stride);
        }
        d
    });
    b.mark_output(preds);
    (b.finish(), preds)
}

fn inference_data(binarized: bool) -> (Value, Value) {
    let mut rng = HdcRng::seed_from_u64(0xE9);
    let queries: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(QUERIES, DIM, &mut rng);
    let classes: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(CLASSES, DIM, &mut rng);
    if binarized {
        (
            Value::bit_matrix(BitMatrix::from_dense(&queries)),
            Value::bit_matrix(BitMatrix::from_dense(&classes)),
        )
    } else {
        (Value::matrix(queries), Value::matrix(classes))
    }
}

fn run_inference(
    program: &Program,
    preds: ValueId,
    queries: &Value,
    classes: &Value,
    batched: bool,
) -> (Vec<usize>, ExecStats) {
    let mut exec = Executor::new(program).unwrap();
    exec.set_batched_stages(batched);
    exec.set_parallel_loops(batched);
    exec.bind("queries", queries.clone()).unwrap();
    exec.bind("classes", classes.clone()).unwrap();
    let out = exec.run().unwrap();
    (out.indices(preds).unwrap().to_vec(), exec.stats())
}

#[test]
fn batched_inference_matches_sequential_across_configs() {
    for binarized in [false, true] {
        for metric in [Metric::Hamming, Metric::Cosine] {
            for perf in perforations() {
                let (program, preds) = build_inference(binarized, metric, perf);
                let (queries, classes) = inference_data(binarized);
                let (batched, b_stats) = run_inference(&program, preds, &queries, &classes, true);
                let (sequential, s_stats) =
                    run_inference(&program, preds, &queries, &classes, false);
                assert_eq!(
                    batched, sequential,
                    "binarized={binarized} metric={metric:?} perf={perf:?}"
                );
                assert_eq!(
                    b_stats.batched_kernel_ops, 1,
                    "batched path used one matrix-level kernel call"
                );
                assert_eq!(
                    s_stats.batched_kernel_ops, 0,
                    "sequential oracle stays per-sample"
                );
                assert_eq!(
                    b_stats.stage_samples, QUERIES,
                    "batched stages still account per sample"
                );
                assert_eq!(s_stats.stage_samples, QUERIES);
                // Every run stamps the dispatched kernel backend.
                let backend = hdc_core::simd::selected().name();
                assert_eq!(b_stats.kernel_backend, backend);
                assert_eq!(s_stats.kernel_backend, backend);
            }
        }
    }
}

#[test]
fn batched_binarized_inference_is_zero_copy() {
    for perf in perforations() {
        let (program, preds) = build_inference(true, Metric::Hamming, perf);
        let (queries, classes) = inference_data(true);
        let (batched, b_stats) = run_inference(&program, preds, &queries, &classes, true);
        let (sequential, s_stats) = run_inference(&program, preds, &queries, &classes, false);
        assert_eq!(batched, sequential);
        assert_eq!(
            b_stats.tensor_bytes_copied, 0,
            "batched binarized inference must not copy a single tensor byte (perf={perf:?})"
        );
        assert!(
            s_stats.tensor_bytes_copied > 0,
            "the per-sample oracle unpacks and stages rows"
        );
        // The popcount kernels served every sample on both paths.
        assert_eq!(b_stats.bit_kernel_ops, QUERIES);
        assert_eq!(s_stats.bit_kernel_ops, QUERIES);
    }
}

#[test]
fn dense_inference_stats_are_accounted_exactly() {
    // The zero-copy claim is only meaningful if the copy accounting is
    // trustworthy on paths that DO copy. For a dense cosine inference run
    // the expected values are exact:
    //
    // * batched: one matrix-level kernel call, and — because the bound
    //   matrices are already in the declared dense representation — zero
    //   tensor bytes copied (kernel outputs are fresh allocations, not
    //   copies);
    // * sequential: no batched kernels, and exactly one row staging copy
    //   per sample (QUERIES * DIM * 8 bytes) — the per-sample oracle
    //   materializes each query row into the stage body slot, while the
    //   score reads and operand accesses are Arc-shared.
    let (program, preds) = build_inference(false, Metric::Cosine, None);
    let (queries, classes) = inference_data(false);
    let (batched, b_stats) = run_inference(&program, preds, &queries, &classes, true);
    let (sequential, s_stats) = run_inference(&program, preds, &queries, &classes, false);
    assert_eq!(batched, sequential);
    assert_eq!(b_stats.batched_kernel_ops, 1);
    assert_eq!(b_stats.tensor_bytes_copied, 0);
    assert_eq!(s_stats.batched_kernel_ops, 0);
    assert_eq!(
        s_stats.tensor_bytes_copied,
        QUERIES * DIM * 8,
        "sequential dense inference stages one row copy per sample"
    );
    // Dense runs never touch the bit kernels.
    assert_eq!(b_stats.bit_kernel_ops, 0);
    assert_eq!(s_stats.bit_kernel_ops, 0);
}

#[test]
fn batched_encoding_matches_sequential() {
    const FEATURES: usize = 24;
    const ENC_DIM: usize = 96;
    const SAMPLES: usize = 9;
    for perf in [None, Some((0, FEATURES, 2))] {
        let mut b = ProgramBuilder::new("equiv_encode");
        let features = b.input_matrix("features", ElementKind::F64, SAMPLES, FEATURES);
        let rp = b.input_matrix("rp", ElementKind::F64, ENC_DIM, FEATURES);
        let encoded = b.encoding_loop("encode", features, ENC_DIM, |b, q| {
            let e = b.matmul(q, rp);
            if let Some((begin, end, stride)) = perf {
                b.red_perf(e, begin, end, stride);
            }
            b.sign(e)
        });
        b.mark_output(encoded);
        let program = b.finish();

        let mut rng = HdcRng::seed_from_u64(0x5EED);
        let fm: HyperMatrix<f64> =
            hdc_core::random::gaussian_hypermatrix(SAMPLES, FEATURES, &mut rng);
        let pm: HyperMatrix<f64> =
            hdc_core::random::bipolar_hypermatrix(ENC_DIM, FEATURES, &mut rng);

        let run = |batched: bool| {
            let mut exec = Executor::new(&program).unwrap();
            exec.set_batched_stages(batched);
            exec.bind("features", Value::matrix(fm.clone())).unwrap();
            exec.bind("rp", Value::matrix(pm.clone())).unwrap();
            let out = exec.run().unwrap();
            (out.matrix(encoded).unwrap(), exec.stats())
        };
        let (batched, b_stats) = run(true);
        let (sequential, s_stats) = run(false);
        assert_eq!(batched, sequential, "perf={perf:?}");
        assert_eq!(b_stats.batched_kernel_ops, 1);
        assert_eq!(s_stats.batched_kernel_ops, 0);
        assert_eq!(b_stats.stage_samples, SAMPLES);
    }
}

#[test]
fn stage_bodies_outside_the_pattern_fall_back_to_sequential() {
    // An inference body with an extra elementwise op is not a single-kernel
    // pattern; the executor must take the per-sample path (and still be
    // correct).
    let mut b = ProgramBuilder::new("fallback");
    let q = b.input_matrix("queries", ElementKind::F64, 6, 32);
    let c = b.input_matrix("classes", ElementKind::F64, 3, 32);
    let preds = b.inference_loop("infer", q, c, ScorePolarity::Distance, |b, s| {
        let d = b.hamming_distance(s, c);
        b.add(d, d)
    });
    b.mark_output(preds);
    let program = b.finish();
    let mut rng = HdcRng::seed_from_u64(3);
    let qm: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(6, 32, &mut rng);
    let cm: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(3, 32, &mut rng);
    let run = |batched: bool| {
        let mut exec = Executor::new(&program).unwrap();
        exec.set_batched_stages(batched);
        exec.bind("queries", Value::matrix(qm.clone())).unwrap();
        exec.bind("classes", Value::matrix(cm.clone())).unwrap();
        let out = exec.run().unwrap();
        (out.indices(preds).unwrap().to_vec(), exec.stats())
    };
    let (with_batching, stats) = run(true);
    let (without, _) = run(false);
    assert_eq!(with_batching, without);
    assert_eq!(stats.batched_kernel_ops, 0, "pattern must not match");
}

#[test]
fn parallel_for_matches_sequential_schedule() {
    const ROWS: usize = 5;
    const COLS: usize = 48;
    let mut b = ProgramBuilder::new("par_rows");
    let m = b.input_matrix("m", ElementKind::F64, ROWS, COLS);
    let out_m = b.input_matrix("out", ElementKind::F64, ROWS, COLS);
    b.mark_output(out_m);
    b.parallel_for("rows", ROWS, |b, idx| {
        let row = b.get_matrix_row_dyn(m, idx);
        let shifted = b.wrap_shift(row, 3);
        let s = b.sign(shifted);
        b.set_matrix_row_dyn(out_m, s, idx);
    });
    let program = b.finish();
    let mut rng = HdcRng::seed_from_u64(11);
    let mm: HyperMatrix<f64> = hdc_core::random::gaussian_hypermatrix(ROWS, COLS, &mut rng);
    let run = |parallel: bool| {
        let mut exec = Executor::new(&program).unwrap();
        exec.set_parallel_loops(parallel);
        exec.bind("m", Value::matrix(mm.clone())).unwrap();
        exec.bind("out", Value::matrix(HyperMatrix::zeros(ROWS, COLS)))
            .unwrap();
        let out = exec.run().unwrap();
        out.matrix(out_m).unwrap()
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn parallel_for_accumulate_rows_matches_sequential() {
    const ROWS: usize = 4;
    const COLS: usize = 40;
    let mut b = ProgramBuilder::new("par_acc");
    let m = b.input_matrix("m", ElementKind::F64, ROWS, COLS);
    let acc = b.input_matrix("acc", ElementKind::F64, ROWS, COLS);
    b.mark_output(acc);
    b.parallel_for("acc_rows", ROWS, |b, idx| {
        let row = b.get_matrix_row_dyn(m, idx);
        // Two accumulations into the same row: the second must observe the
        // first, on both schedules.
        b.accumulate_row(acc, row, idx);
        b.accumulate_row(acc, row, idx);
    });
    let program = b.finish();
    let mut rng = HdcRng::seed_from_u64(13);
    let mm: HyperMatrix<f64> = hdc_core::random::gaussian_hypermatrix(ROWS, COLS, &mut rng);
    let base: HyperMatrix<f64> = hdc_core::random::gaussian_hypermatrix(ROWS, COLS, &mut rng);
    let run = |parallel: bool| {
        let mut exec = Executor::new(&program).unwrap();
        exec.set_parallel_loops(parallel);
        exec.bind("m", Value::matrix(mm.clone())).unwrap();
        exec.bind("acc", Value::matrix(base.clone())).unwrap();
        let out = exec.run().unwrap();
        out.matrix(acc).unwrap()
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn cross_iteration_dependences_fall_back_to_sequential() {
    // accumulate_row at a *fixed* row is a reduction across iterations —
    // the row-independence analysis must reject it and the sequential
    // schedule must run (results identical whether the toggle is on or
    // off).
    const COLS: usize = 16;
    let mut b = ProgramBuilder::new("par_reduce");
    let m = b.input_matrix("m", ElementKind::F64, 4, COLS);
    let acc = b.input_matrix("acc", ElementKind::F64, 1, COLS);
    b.mark_output(acc);
    b.parallel_for("reduce", 4, |b, idx| {
        let row = b.get_matrix_row_dyn(m, idx);
        b.accumulate_row(acc, row, 0i64);
    });
    let program = b.finish();
    let mut rng = HdcRng::seed_from_u64(17);
    let mm: HyperMatrix<f64> = hdc_core::random::gaussian_hypermatrix(4, COLS, &mut rng);
    let run = |parallel: bool| {
        let mut exec = Executor::new(&program).unwrap();
        exec.set_parallel_loops(parallel);
        exec.bind("m", Value::matrix(mm.clone())).unwrap();
        exec.bind("acc", Value::matrix(HyperMatrix::zeros(1, COLS)))
            .unwrap();
        let out = exec.run().unwrap();
        out.matrix(acc).unwrap()
    };
    assert_eq!(run(true), run(false));
    // And the fallback really did reduce: row 0 is the column sum of m.
    let reduced = run(true);
    for cidx in 0..COLS {
        let expect: f64 = (0..4).map(|r| mm.get(r, cidx).unwrap()).sum();
        assert!((reduced.get(0, cidx).unwrap() - expect).abs() < 1e-12);
    }
}

#[test]
fn arg_top_k_matches_sequential_and_rejects_nan() {
    // Matrix operand: the batched selection kernel vs the per-row
    // sequential loop must agree exactly (including ties, which resolve to
    // the lower index on both paths).
    let mut b = ProgramBuilder::new("topk_equiv");
    let scores = b.input_matrix("scores", ElementKind::F64, 11, 17);
    let picks = b.arg_top_k(scores, 4);
    b.mark_output(picks);
    let program = b.finish();
    let mut rng = HdcRng::seed_from_u64(0x70C);
    let data: HyperMatrix<f64> = hdc_core::random::gaussian_hypermatrix(11, 17, &mut rng);
    let run = |batched: bool| {
        let mut exec = Executor::new(&program).unwrap();
        exec.set_batched_stages(batched);
        exec.bind("scores", Value::matrix(data.clone())).unwrap();
        let out = exec.run().unwrap();
        (out.indices(picks).unwrap().to_vec(), exec.stats())
    };
    let (batched, b_stats) = run(true);
    let (sequential, s_stats) = run(false);
    assert_eq!(batched, sequential);
    assert_eq!(batched.len(), 11 * 4);
    assert_eq!(b_stats.batched_kernel_ops, 1);
    assert_eq!(s_stats.batched_kernel_ops, 0);

    // NaN scores shorten the selection (arg_top_k skips incomparable
    // values); a row left with fewer than k comparable scores cannot fill
    // the declared indices<rows*k> layout, and both schedules must reject
    // it instead of returning a ragged result.
    let mut nan_data = data.clone();
    for col in 0..14 {
        nan_data.set(3, col, f64::NAN).unwrap();
    }
    for batched in [true, false] {
        let mut exec = Executor::new(&program).unwrap();
        exec.set_batched_stages(batched);
        exec.bind("scores", Value::matrix(nan_data.clone()))
            .unwrap();
        assert!(
            exec.run().is_err(),
            "NaN scores must fail top-k selection (batched={batched})"
        );
    }

    // Vector operand: same contract on the non-batched shape. One NaN
    // among six scores leaves only five comparable candidates, so a full
    // k = 6 selection cannot satisfy indices<6> and must error.
    let mut b = ProgramBuilder::new("topk_vec");
    let scores_v = b.input_vector("scores", ElementKind::F64, 6);
    let picks_v = b.arg_top_k(scores_v, 6);
    b.mark_output(picks_v);
    let program_v = b.finish();
    let mut exec = Executor::new(&program_v).unwrap();
    exec.bind(
        "scores",
        Value::vector(HyperVector::from_vec(vec![
            1.0,
            f64::NAN,
            3.0,
            0.5,
            2.0,
            -1.0,
        ])),
    )
    .unwrap();
    assert!(
        exec.run().is_err(),
        "vector top-k shortened by NaN must error, not return ragged indices"
    );
}

// ---------------------------------------------------------------------------
// batched-epoch training
// ---------------------------------------------------------------------------

const TRAIN_SAMPLES: usize = 21;

fn build_training(
    metric: Metric,
    perf: Option<(usize, usize, usize)>,
    epochs: usize,
) -> (Program, ValueId) {
    let mut b = ProgramBuilder::new("equiv_train");
    let q = b.input_matrix("train", ElementKind::F64, TRAIN_SAMPLES, DIM);
    let y = b.input_indices("labels", TRAIN_SAMPLES);
    let c = b.input_matrix("classes", ElementKind::F64, CLASSES, DIM);
    let polarity = match metric {
        Metric::Hamming => ScorePolarity::Distance,
        Metric::Cosine => ScorePolarity::Similarity,
    };
    let trained = b.training_loop("retrain", q, y, c, epochs, polarity, |b, s| {
        let d = match metric {
            Metric::Hamming => b.hamming_distance(s, c),
            Metric::Cosine => b.cossim(s, c),
        };
        if let Some((begin, end, stride)) = perf {
            b.red_perf(d, begin, end, stride);
        }
        d
    });
    b.mark_output(trained);
    (b.finish(), trained)
}

/// Noisy prototype samples whose labels force mispredictions from the zero
/// class matrix, so every epoch performs mid-epoch class-row updates.
fn training_data() -> (Value, Value, Value) {
    let mut rng = HdcRng::seed_from_u64(0x7EA1);
    let protos: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(CLASSES, DIM, &mut rng);
    let labels: Vec<usize> = (0..TRAIN_SAMPLES).map(|i| i % CLASSES).collect();
    let rows: Vec<HyperVector<f64>> = labels
        .iter()
        .map(|&l| {
            let mut v = protos.row_vector(l).unwrap();
            for k in 0..DIM / 8 {
                let idx = (k * 5 + l * 11) % DIM;
                let flipped = -v.get(idx).unwrap();
                v.set(idx, flipped).unwrap();
            }
            v
        })
        .collect();
    (
        Value::matrix(HyperMatrix::from_rows(rows).unwrap()),
        Value::indices(labels),
        Value::matrix(HyperMatrix::zeros(CLASSES, DIM)),
    )
}

fn run_training(
    program: &Program,
    trained: ValueId,
    data: &(Value, Value, Value),
    batched: bool,
) -> (HyperMatrix<f64>, ExecStats) {
    let mut exec = Executor::new(program).unwrap();
    exec.set_batched_stages(batched);
    exec.set_parallel_loops(batched);
    exec.bind("train", data.0.clone()).unwrap();
    exec.bind("labels", data.1.clone()).unwrap();
    exec.bind("classes", data.2.clone()).unwrap();
    let out = exec.run().unwrap();
    (out.matrix(trained).unwrap(), exec.stats())
}

#[test]
fn batched_epoch_training_is_bit_identical_to_sequential() {
    let data = training_data();
    for metric in [Metric::Cosine, Metric::Hamming] {
        for perf in perforations() {
            for epochs in [1, 3] {
                let (program, trained) = build_training(metric, perf, epochs);
                let (batched, b_stats) = run_training(&program, trained, &data, true);
                let (sequential, s_stats) = run_training(&program, trained, &data, false);
                assert_eq!(
                    batched.as_slice(),
                    sequential.as_slice(),
                    "metric={metric:?} perf={perf:?} epochs={epochs}"
                );
                // One epoch kernel per epoch on the batched schedule; the
                // sequential oracle never touches the batched kernels.
                assert_eq!(b_stats.epoch_kernel_ops, epochs);
                assert_eq!(b_stats.batched_kernel_ops, epochs);
                assert_eq!(s_stats.epoch_kernel_ops, 0);
                assert_eq!(s_stats.batched_kernel_ops, 0);
                assert_eq!(s_stats.rescored_samples, 0);
                // Starting from a zero class matrix, the first sample with a
                // nonzero label mispredicts, so later samples re-score.
                assert!(
                    b_stats.rescored_samples > 0,
                    "mid-epoch updates must force re-scoring"
                );
                assert!(b_stats.rescored_samples <= epochs * TRAIN_SAMPLES);
                // Both schedules account every per-sample pass.
                assert_eq!(b_stats.stage_samples, epochs * TRAIN_SAMPLES);
                assert_eq!(s_stats.stage_samples, epochs * TRAIN_SAMPLES);
            }
        }
    }
}

#[test]
fn repeated_runs_report_identical_stats_and_outputs() {
    // Regression: `run` used to accumulate ExecStats across calls and leave
    // the previous run's trained class matrix in the store, so a second run
    // reported doubled counters and trained on top of mutated state.
    let data = training_data();
    for batched in [true, false] {
        let (program, trained) = build_training(Metric::Cosine, None, 2);
        let mut exec = Executor::new(&program).unwrap();
        exec.set_batched_stages(batched);
        exec.set_parallel_loops(batched);
        exec.bind("train", data.0.clone()).unwrap();
        exec.bind("labels", data.1.clone()).unwrap();
        exec.bind("classes", data.2.clone()).unwrap();
        let first = exec.run().unwrap();
        let first_stats = exec.stats();
        let first_trace = exec.stage_trace().to_vec();
        let second = exec.run().unwrap();
        let second_stats = exec.stats();
        assert_eq!(
            first.matrix(trained).unwrap().as_slice(),
            second.matrix(trained).unwrap().as_slice(),
            "batched={batched}: identical runs must produce identical outputs"
        );
        assert_eq!(
            first_stats, second_stats,
            "batched={batched}: identical runs must report identical stats"
        );
        assert_eq!(exec.stage_trace(), first_trace.as_slice());

        // Rebinding between runs takes effect (the restore must not clobber
        // it): binding a nonzero class matrix matches a fresh executor.
        let mut rng = HdcRng::seed_from_u64(0xB1D);
        let warm: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(CLASSES, DIM, &mut rng);
        exec.bind("classes", Value::matrix(warm.clone())).unwrap();
        let rebound = exec.run().unwrap();
        let mut fresh = Executor::new(&program).unwrap();
        fresh.set_batched_stages(batched);
        fresh.set_parallel_loops(batched);
        fresh.bind("train", data.0.clone()).unwrap();
        fresh.bind("labels", data.1.clone()).unwrap();
        fresh.bind("classes", Value::matrix(warm)).unwrap();
        let expect = fresh.run().unwrap();
        assert_eq!(
            rebound.matrix(trained).unwrap().as_slice(),
            expect.matrix(trained).unwrap().as_slice()
        );
    }
}

// ---------------------------------------------------------------------------
// segmented-reduction clustering update
// ---------------------------------------------------------------------------

#[test]
fn segmented_accumulate_matches_sequential() {
    const N: usize = 13;
    const K: usize = 3;
    const COLS: usize = 40;
    // The clustering update shape, in both variants: dense rows gathered
    // directly, and binarized rows gathered through a type_cast barrier.
    for binarized in [false, true] {
        let mut b = ProgramBuilder::new("seg_acc");
        let elem = if binarized {
            ElementKind::Bit
        } else {
            ElementKind::F64
        };
        let m = b.input_matrix("m", elem, N, COLS);
        let assign_in = b.input_indices("assign", N);
        let acc = b.input_matrix("acc", ElementKind::F64, K, COLS);
        b.mark_output(acc);
        b.parallel_for("update", N, |b, idx| {
            let row = b.get_matrix_row_dyn(m, idx);
            let row = if binarized {
                b.type_cast(row, ElementKind::F64)
            } else {
                row
            };
            let cluster = b.get_element_dyn(assign_in, idx);
            b.accumulate_row(acc, row, cluster);
        });
        let program = b.finish();
        let mut rng = HdcRng::seed_from_u64(0x5E6);
        let dense: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(N, COLS, &mut rng);
        let rows_value = if binarized {
            Value::bit_matrix(BitMatrix::from_dense(&dense))
        } else {
            Value::matrix(dense)
        };
        let assignments: Vec<usize> = (0..N).map(|i| (i * 2) % K).collect();
        let base: HyperMatrix<f64> = hdc_core::random::gaussian_hypermatrix(K, COLS, &mut rng);
        let run = |batched: bool| {
            let mut exec = Executor::new(&program).unwrap();
            exec.set_batched_stages(batched);
            exec.set_parallel_loops(batched);
            exec.bind("m", rows_value.clone()).unwrap();
            exec.bind("assign", Value::indices(assignments.clone()))
                .unwrap();
            exec.bind("acc", Value::matrix(base.clone())).unwrap();
            let out = exec.run().unwrap();
            (out.matrix(acc).unwrap(), exec.stats())
        };
        let (batched, b_stats) = run(true);
        let (sequential, s_stats) = run(false);
        assert_eq!(
            batched.as_slice(),
            sequential.as_slice(),
            "binarized={binarized}"
        );
        assert_eq!(b_stats.epoch_kernel_ops, 1, "one segmented reduction");
        assert_eq!(b_stats.batched_kernel_ops, 1);
        assert_eq!(s_stats.epoch_kernel_ops, 0);
        assert_eq!(s_stats.batched_kernel_ops, 0);
    }
}

#[test]
fn binarized_pipeline_equivalence_through_passes() {
    // Compile a sign-annotated inference program through automatic
    // binarization, then check batched == sequential on the binarized form.
    let mut b = ProgramBuilder::new("binarize_equiv");
    let q = b.input_matrix("queries", ElementKind::F64, QUERIES, DIM);
    let c = b.input_matrix("classes", ElementKind::F64, CLASSES, DIM);
    let qs = b.sign(q);
    let cs = b.sign(c);
    let preds = b.inference_loop("infer", qs, cs, ScorePolarity::Distance, |b, s| {
        b.hamming_distance(s, cs)
    });
    b.mark_output(preds);
    let mut program = b.finish();
    hdc_passes::binarize(&mut program, &hdc_passes::BinarizeOptions::default());

    let mut rng = HdcRng::seed_from_u64(0xB1AB);
    let qm: HyperMatrix<f64> = hdc_core::random::gaussian_hypermatrix(QUERIES, DIM, &mut rng);
    let cm: HyperMatrix<f64> = hdc_core::random::gaussian_hypermatrix(CLASSES, DIM, &mut rng);
    let run = |batched: bool| {
        let mut exec = Executor::new(&program).unwrap();
        exec.set_batched_stages(batched);
        exec.bind("queries", Value::matrix(qm.clone())).unwrap();
        exec.bind("classes", Value::matrix(cm.clone())).unwrap();
        let out = exec.run().unwrap();
        out.indices(preds).unwrap().to_vec()
    };
    assert_eq!(run(true), run(false));
}

// ---------------------------------------------------------------------------
// class-memory sharding: the second parallel axis must stay bit-identical
// to the sequential per-sample oracle for every forced shard count, and the
// shard/merge counters must account exactly.
// ---------------------------------------------------------------------------

#[test]
fn sharded_inference_is_bit_identical_to_sequential_oracle() {
    for binarized in [false, true] {
        for metric in [Metric::Hamming, Metric::Cosine] {
            for perf in perforations() {
                let (program, preds) = build_inference(binarized, metric, perf);
                let (queries, classes) = inference_data(binarized);
                let (sequential, s_stats) =
                    run_inference(&program, preds, &queries, &classes, false);
                assert_eq!(s_stats.class_shards, 0, "oracle never shards");
                assert_eq!(s_stats.shard_merge_ops, 0);
                for shards in [1, 2, 3, 7, 16] {
                    let mut exec = Executor::new(&program).unwrap();
                    exec.set_class_shards(Some(shards));
                    exec.bind("queries", queries.clone()).unwrap();
                    exec.bind("classes", classes.clone()).unwrap();
                    let out = exec.run().unwrap();
                    assert_eq!(
                        out.indices(preds).unwrap(),
                        sequential.as_slice(),
                        "binarized={binarized} metric={metric:?} perf={perf:?} shards={shards}"
                    );
                    let stats = exec.stats();
                    // The plan clamps to the class-row count; a single
                    // effective shard runs the unsharded path with zero
                    // shard accounting.
                    let effective = shards.min(CLASSES);
                    if effective > 1 {
                        assert_eq!(stats.class_shards, effective, "shards={shards}");
                        assert_eq!(
                            stats.shard_merge_ops,
                            QUERIES * (effective - 1),
                            "one reduction tree per query row"
                        );
                    } else {
                        assert_eq!(stats.class_shards, 0);
                        assert_eq!(stats.shard_merge_ops, 0);
                    }
                    // Sharding changes scheduling only; the batched-call
                    // accounting is untouched.
                    assert_eq!(stats.batched_kernel_ops, 1);
                    assert_eq!(stats.stage_samples, QUERIES);
                }
            }
        }
    }
}

#[test]
fn sharded_training_is_bit_identical_to_sequential_oracle() {
    let data = training_data();
    for metric in [Metric::Cosine, Metric::Hamming] {
        for perf in perforations() {
            let (program, trained) = build_training(metric, perf, 2);
            let (sequential, _) = run_training(&program, trained, &data, false);
            for shards in [2, 3, 7] {
                let mut exec = Executor::new(&program).unwrap();
                exec.set_class_shards(Some(shards));
                exec.bind("train", data.0.clone()).unwrap();
                exec.bind("labels", data.1.clone()).unwrap();
                exec.bind("classes", data.2.clone()).unwrap();
                let out = exec.run().unwrap();
                assert_eq!(
                    out.matrix(trained).unwrap().as_slice(),
                    sequential.as_slice(),
                    "metric={metric:?} perf={perf:?} shards={shards}"
                );
                let stats = exec.stats();
                assert_eq!(stats.epoch_kernel_ops, 2);
                assert_eq!(
                    stats.class_shards,
                    2 * shards,
                    "one sharded epoch kernel per epoch"
                );
                // Frozen-score selections merge through the tree; stale
                // re-scores use the per-sample oracle directly, so merges
                // are bounded by the non-rescored sample count.
                let frozen_selections = 2 * TRAIN_SAMPLES - stats.rescored_samples;
                assert_eq!(stats.shard_merge_ops, frozen_selections * (shards - 1));
            }
        }
    }
}

#[test]
fn sharded_top_k_and_all_pairs_match_unsharded() {
    // An all-pairs bit similarity feeding arg_top_k: both the scoring and
    // the selection run sharded, and must agree with the unsharded path.
    const LIBRARY: usize = 23;
    let mut b = ProgramBuilder::new("sharded_topk");
    let q = b.input_matrix("queries", ElementKind::Bit, QUERIES, DIM);
    let lib = b.input_matrix("library", ElementKind::Bit, LIBRARY, DIM);
    let scores = b.cossim(q, lib);
    let picks = b.arg_top_k(scores, 4);
    b.mark_output(picks);
    let program = b.finish();

    let mut rng = HdcRng::seed_from_u64(0x70F2);
    let qm: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(QUERIES, DIM, &mut rng);
    let lm: HyperMatrix<f64> = hdc_core::random::bipolar_hypermatrix(LIBRARY, DIM, &mut rng);
    let run = |shards: Option<usize>| {
        let mut exec = Executor::new(&program).unwrap();
        exec.set_class_shards(shards);
        exec.bind("queries", Value::bit_matrix(BitMatrix::from_dense(&qm)))
            .unwrap();
        exec.bind("library", Value::bit_matrix(BitMatrix::from_dense(&lm)))
            .unwrap();
        let out = exec.run().unwrap();
        (out.indices(picks).unwrap().to_vec(), exec.stats())
    };
    let (baseline, base_stats) = run(Some(1));
    assert_eq!(base_stats.class_shards, 0);
    for shards in [2, 3, 7, 16] {
        let (sharded, stats) = run(Some(shards));
        assert_eq!(sharded, baseline, "shards={shards}");
        let effective = shards.min(LIBRARY);
        // Both the all-pairs score kernel and the top-k selection shard.
        assert_eq!(stats.class_shards, 2 * effective);
        assert_eq!(stats.shard_merge_ops, QUERIES * (effective - 1));
    }
}
